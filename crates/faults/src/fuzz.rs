//! The scenario fuzzer: seeded random fault plans swept across N / m / δ.
//!
//! Each iteration derives a [`FuzzCase`] from the master seed alone
//! (ChaCha-backed, no ambient randomness), runs it under the fault harness,
//! and — on any invariant violation — greedily shrinks the case to a
//! minimal reproducer whose one-line spec is returned for replay. A clean
//! implementation fuzzes forever without a failure; the mutation sanity
//! test proves the loop actually detects planted bugs.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use rayon::prelude::*;
use sstsp::invariants::Violation;

use crate::harness::run_case;
use crate::plan::{CorruptField, FaultEvent, FaultKind, FaultPlan, FuzzCase, MeshSpec};
use crate::shrink::shrink;

/// Fuzzer knobs. Defaults keep a full sweep under a couple of minutes.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of random cases to run.
    pub iterations: u32,
    /// Master seed; the whole sweep is a pure function of it.
    pub master_seed: u64,
    /// Maximum events per plan.
    pub max_events: usize,
    /// Fuzz mesh topologies: each case also draws a topology dimension
    /// (line / ring / bridged multi-domain) and may add a domain-targeted
    /// fault. `false` keeps the original single-hop stream byte-stable.
    pub mesh: bool,
    /// Fuzz coordinated-adversary campaigns: each case also draws a
    /// [`CampaignSpec`] (single-hop coalitions; bridged-mesh Sybil floods
    /// and reference-slot jammers). `false` keeps the other streams
    /// byte-stable. Takes precedence over `mesh` (campaign cases draw
    /// their own topology dimension).
    pub campaign: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iterations: 25,
            master_seed: 2006,
            max_events: 4,
            mesh: false,
            campaign: false,
        }
    }
}

/// A failing case found by the fuzzer, shrunk and ready to replay.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The case as generated.
    pub original: FuzzCase,
    /// The case after shrinking (still failing).
    pub shrunk: FuzzCase,
    /// Violations the shrunk case produces.
    pub violations: Vec<Violation>,
}

/// Outcome of a fuzz sweep.
#[derive(Debug)]
pub struct FuzzReport {
    /// Cases actually executed.
    pub cases_run: u32,
    /// The first failure, if any (the sweep stops there).
    pub failure: Option<FuzzFailure>,
}

/// The N / m / δ grid the fuzzer samples from. Small networks and short
/// runs: fault bugs are reachability bugs, not scale bugs, and a small
/// failing case shrinks fast.
const NS: [u32; 4] = [6, 8, 12, 16];
const MS: [u32; 3] = [2, 4, 6];
const DELTAS: [f64; 3] = [200.0, 300.0, 500.0];

/// Derive the `i`-th random case from `rng`.
pub fn random_case(rng: &mut ChaCha12Rng, max_events: usize) -> FuzzCase {
    let n = NS[rng.random_range(0..NS.len())];
    let duration_s = rng.random_range(15u32..=35) as f64;
    let mut case = FuzzCase {
        n,
        duration_s,
        seed: rng.random_range(0..u64::MAX),
        m: MS[rng.random_range(0..MS.len())],
        guard_fine_us: DELTAS[rng.random_range(0..DELTAS.len())],
        mesh: None,
        campaign: None,
        plan: FaultPlan {
            seed: rng.random_range(0..u64::MAX),
            events: Vec::new(),
        },
    };
    let total_bps = case.total_bps();
    let n_events = rng.random_range(1..=max_events);
    for _ in 0..n_events {
        case.plan.events.push(random_event(rng, n, total_bps));
    }
    case
}

/// Derive a random *mesh* case: a plain [`random_case`] (consuming the
/// identical RNG prefix, so the single-hop stream stays byte-stable) plus a
/// topology dimension and, for bridged meshes, possibly one domain-targeted
/// fault. Node-targeted faults are retargeted modulo the topology's actual
/// station count (bridged meshes derive their own `n`).
pub fn random_mesh_case(rng: &mut ChaCha12Rng, max_events: usize) -> FuzzCase {
    let mut case = random_case(rng, max_events);
    let mesh = match rng.random_range(0..6u32) {
        0 => MeshSpec::Line,
        1 => MeshSpec::Ring,
        _ => MeshSpec::Bridged {
            domains: rng.random_range(2..=3),
            cols: rng.random_range(1..=3),
            rows: rng.random_range(1..=2),
        },
    };
    case.mesh = Some(mesh);
    let n = case.scenario().n_nodes;
    for ev in &mut case.plan.events {
        retarget_nodes(&mut ev.kind, n);
    }
    if let MeshSpec::Bridged { domains, .. } = mesh {
        if rng.random_bool(0.6) {
            let total_bps = case.total_bps();
            // Past BP 60 every domain has had time to elect a reference
            // worth crashing.
            let start_bp = rng.random_range(60..total_bps.saturating_sub(40).max(61));
            let rejoin = if rng.random_bool(0.7) {
                Some(rng.random_range(10..60))
            } else {
                None
            };
            let kind = if rng.random_bool(0.5) {
                FaultKind::CrashDomain {
                    domain: rng.random_range(0..domains),
                    rejoin_after_bps: rejoin,
                }
            } else {
                FaultKind::KillBridge {
                    bridge: rng.random_range(0..domains - 1),
                    rejoin_after_bps: rejoin,
                }
            };
            case.plan.events.push(FaultEvent {
                start_bp,
                end_bp: start_bp,
                kind,
            });
        }
    }
    case
}

/// Offsets the campaign fuzzer injects as the coalition's timestamp error,
/// straddling the δ grid ([`DELTAS`]) from well-under-guard to far past it.
const CAMPAIGN_ERRORS_US: [f64; 5] = [10.0, 30.0, 100.0, 800.0, 2000.0];

/// Derive a random *campaign* case: a plain [`random_case`] (consuming the
/// identical RNG prefix, so the other streams stay byte-stable) plus a
/// coordinated-adversary dimension — single-hop fast-beacon + replay
/// coalitions, or Sybil floods / reference-slot jammers against a bridged
/// mesh's per-domain elections.
pub fn random_campaign_case(rng: &mut ChaCha12Rng, max_events: usize) -> FuzzCase {
    use sstsp::scenario::CampaignKind;
    let mut case = random_case(rng, max_events);
    let error_us = CAMPAIGN_ERRORS_US[rng.random_range(0..CAMPAIGN_ERRORS_US.len())];
    let (kind, attackers) = match rng.random_range(0..3u32) {
        0 => (
            CampaignKind::Coalition {
                error_us,
                delay_bps: rng.random_range(1..=3),
            },
            rng.random_range(2..=3),
        ),
        1 => (
            CampaignKind::SybilFlood { error_us },
            rng.random_range(1..=3),
        ),
        _ => (CampaignKind::RefSlotJam, 1),
    };
    // Sybil floods and selective jamming target per-domain reference
    // election; coalitions attack the paper's single-hop IBSS directly.
    if !matches!(kind, CampaignKind::Coalition { .. }) {
        case.mesh = Some(MeshSpec::Bridged {
            domains: rng.random_range(2..=3),
            cols: rng.random_range(2..=3),
            rows: rng.random_range(1..=2),
        });
        let n = case.scenario().n_nodes;
        for ev in &mut case.plan.events {
            retarget_nodes(&mut ev.kind, n);
        }
    }
    // Post-convergence window kept clear of the run's tail so the
    // invariants' quiet-period checks still get undisturbed BPs.
    let start_s = rng.random_range(8..=12) as f64;
    let end_s = (start_s + rng.random_range(4..=8) as f64).min(case.duration_s - 2.0);
    case.campaign = Some(sstsp::scenario::CampaignSpec {
        kind,
        attackers,
        start_s,
        end_s,
    });
    case
}

/// Clamp a fault's station target into `0..n` (the engine indexes stations
/// directly, so an out-of-range target would be a harness bug, not a
/// protocol bug).
pub(crate) fn retarget_nodes(kind: &mut FaultKind, n: u32) {
    match kind {
        FaultKind::Crash { node, .. }
        | FaultKind::ClockStep { node, .. }
        | FaultKind::ClockFreeze { node } => *node %= n,
        _ => {}
    }
}

fn random_event(rng: &mut ChaCha12Rng, n: u32, total_bps: u64) -> FaultEvent {
    // Leave the first ~30 BPs alone so the network has a chance to elect a
    // reference worth disturbing, and leave tail room for windows.
    let start_bp = rng.random_range(30..total_bps.saturating_sub(40).max(31));
    let max_len = (total_bps - start_bp).min(80);
    let end_bp = start_bp + rng.random_range(0..=max_len);
    let node = rng.random_range(0..n);
    let rejoin = if rng.random_bool(0.7) {
        Some(rng.random_range(10..60))
    } else {
        None
    };
    let kind = match rng.random_range(0..9u32) {
        0 => FaultKind::BurstLoss {
            p: rng.random_range(0.3..1.0),
        },
        1 => FaultKind::Corrupt {
            field: match rng.random_range(0..4u32) {
                0 => CorruptField::Timestamp,
                1 => CorruptField::Mac,
                2 => CorruptField::Disclosed,
                _ => CorruptField::Truncate,
            },
            p: rng.random_range(0.2..1.0),
        },
        2 => FaultKind::Crash {
            node,
            rejoin_after_bps: rejoin,
        },
        3 => FaultKind::KillReference {
            rejoin_after_bps: rejoin,
        },
        4 => FaultKind::ClockStep {
            node,
            delta_us: rng.random_range(-2000.0..2000.0),
        },
        5 => FaultKind::ClockFreeze { node },
        6 => FaultKind::DisclosureLoss {
            p: rng.random_range(0.3..1.0),
        },
        7 => FaultKind::Jam,
        _ => FaultKind::ChainExhaust {
            intervals: start_bp,
        },
    };
    FaultEvent {
        start_bp,
        end_bp,
        kind,
    }
}

/// Run a fuzz sweep. Stops at (and shrinks) the first failing case.
///
/// Case *generation* is sequential — each case consumes the master-seeded
/// RNG stream, so the i-th case is the same bytes whatever the pool size.
/// Case *execution* fans out over the current rayon pool (`run_case` is a
/// pure function of its case), and the results are then replayed in case
/// order: the log stream, the failure chosen for shrinking, and the
/// reported `cases_run` are byte-identical to the sequential sweep. A
/// sweep that fails early does some throwaway work past the failure; the
/// common all-clean sweep is the one worth the speedup.
pub fn fuzz<L: FnMut(&str)>(cfg: &FuzzConfig, mut log: L) -> FuzzReport {
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.master_seed);
    let cases: Vec<FuzzCase> = (0..cfg.iterations)
        .map(|_| {
            if cfg.campaign {
                random_campaign_case(&mut rng, cfg.max_events)
            } else if cfg.mesh {
                random_mesh_case(&mut rng, cfg.max_events)
            } else {
                random_case(&mut rng, cfg.max_events)
            }
        })
        .collect();
    let violation_counts: Vec<usize> = cases
        .par_iter()
        .map(|case| run_case(case).violations.len())
        .collect();
    for (i, case) in cases.iter().enumerate() {
        if violation_counts[i] == 0 {
            let mesh_note = case.mesh.map(|m| format!(", mesh={m}")).unwrap_or_default();
            let campaign_note = case
                .campaign
                .map(|c| format!(", campaign={c}"))
                .unwrap_or_default();
            log(&format!(
                "case {}/{}: ok ({} events, N={}, {} s{mesh_note}{campaign_note})",
                i + 1,
                cfg.iterations,
                case.plan.events.len(),
                case.scenario().n_nodes,
                case.duration_s
            ));
            continue;
        }
        log(&format!(
            "case {}/{}: {} violation(s) — shrinking",
            i + 1,
            cfg.iterations,
            violation_counts[i]
        ));
        // Shrinking stays sequential: each probe depends on the last.
        let shrunk = shrink(case.clone(), |c| !run_case(c).violations.is_empty());
        let violations = run_case(&shrunk).violations;
        return FuzzReport {
            cases_run: i as u32 + 1,
            failure: Some(FuzzFailure {
                original: case.clone(),
                shrunk,
                violations,
            }),
        };
    }
    FuzzReport {
        cases_run: cfg.iterations,
        failure: None,
    }
}
