//! Mutation sanity check for the guard-time δ check: plant a known
//! protocol bug (treat δ as infinite, disabling the timestamp guard), then
//! verify a coalition campaign exposes it — the invariant checker flags
//! it, the campaign fuzzer finds it on its own, and the shrinker reduces
//! the coalition to the minimal colluding subset whose one-line spec
//! replays deterministically.
//!
//! The planted bug is a process-global flag (`mutation-hooks` feature),
//! so this file contains exactly ONE `#[test]` — phases that need the
//! flag off and on would race as separate tests.

use sstsp::scenario::{CampaignKind, CampaignSpec};
use sstsp_crypto::mu_tesla::mutation;
use sstsp_faults::fuzz::{fuzz, FuzzConfig};
use sstsp_faults::harness::run_case;
use sstsp_faults::plan::FuzzCase;
use sstsp_faults::shrink::shrink;

/// A fast-beacon + replay coalition whose injected timestamp error (800 µs)
/// is far past δ = 300 µs: the correct guard rejects every poisoned beacon,
/// while the weakened guard accepts them — a checker-visible difference.
fn trigger_case() -> FuzzCase {
    let mut case = FuzzCase::base(8, 20.0, 7);
    case.campaign = Some(CampaignSpec {
        kind: CampaignKind::Coalition {
            error_us: 800.0,
            delay_bps: 2,
        },
        attackers: 3,
        start_s: 8.0,
        end_s: 16.0,
    });
    case
}

#[test]
fn weakened_guard_is_caught_shrunk_and_replayable() {
    // Phase 1 — flag off: the correct guard rejects the coalition's
    // poisoned timestamps; the checker stays silent.
    mutation::set_weaken_guard_check(false);
    let clean = run_case(&trigger_case());
    assert!(
        clean.violations.is_empty(),
        "correct guard must hold against the coalition: {:?}",
        clean.violations
    );

    // Phase 2 — plant the bug: locked stations now accept timestamps
    // arbitrarily far from their own clocks. GuardInfluenceBound (which
    // re-derives |ts_ref − c| ≤ δ independently) must fire.
    mutation::set_weaken_guard_check(true);
    let buggy = run_case(&trigger_case());
    assert!(
        !buggy.violations.is_empty(),
        "weakened guard must produce invariant violations"
    );
    assert!(
        buggy
            .violations
            .iter()
            .any(|v| v.to_string().contains("GuardInfluenceBound")),
        "violations must include GuardInfluenceBound: {:?}",
        buggy.violations
    );

    // Phase 3 — shrink: the campaign is load-bearing (only its members
    // emit out-of-guard timestamps), so it survives shrinking, reduced to
    // the minimal colluding subset.
    let shrunk = shrink(trigger_case(), |c| !run_case(c).violations.is_empty());
    let coalition = shrunk
        .campaign
        .expect("campaign is the trigger and survives");
    assert_eq!(
        coalition.attackers,
        coalition.min_attackers(),
        "coalition shrinks to the minimal colluding subset: {shrunk}"
    );
    assert!(
        !run_case(&shrunk).violations.is_empty(),
        "shrunk case still fails"
    );

    // Phase 4 — the one-line spec round-trips and replays deterministically.
    let spec = shrunk.to_string();
    let replayed: FuzzCase = spec.parse().expect("spec parses back");
    assert_eq!(replayed, shrunk);
    let a = run_case(&shrunk);
    let b = run_case(&replayed);
    assert_eq!(a.violations.len(), b.violations.len());
    assert_eq!(a.result.spread.values(), b.result.spread.values());

    // Phase 5 — the campaign fuzzer finds the bug on its own (coalition
    // draws with error > δ are about a fifth of its campaign space).
    let report = fuzz(
        &FuzzConfig {
            iterations: 40,
            master_seed: 2006,
            max_events: 2,
            mesh: false,
            campaign: true,
        },
        |_| {},
    );
    let failure = report.failure.expect("campaign fuzzer must find the bug");
    assert!(
        !failure.violations.is_empty(),
        "shrunk fuzz failure still violates"
    );
    assert!(
        failure.shrunk.campaign.is_some(),
        "the failing dimension is the campaign: {}",
        failure.shrunk
    );

    // Phase 6 — clear the bug: the same reproducers go clean again,
    // proving the violations came from the mutation, not the campaign.
    mutation::set_weaken_guard_check(false);
    assert!(run_case(&shrunk).violations.is_empty());
    assert!(run_case(&failure.shrunk).violations.is_empty());
}
