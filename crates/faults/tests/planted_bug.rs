//! Mutation sanity check: plant a known protocol bug (accept beacons keyed
//! by already-disclosed / forged µTESLA keys), then verify the invariant
//! checker flags it, the fuzzer finds it, and the shrinker reduces it to a
//! minimal one-line reproducer that replays deterministically.
//!
//! The planted bug is a process-global flag (`mutation-hooks` feature in
//! `sstsp-crypto`), so this file contains exactly ONE `#[test]` — phases
//! that need the flag off and on would race as separate tests.

use sstsp_crypto::mu_tesla::mutation;
use sstsp_faults::fuzz::{fuzz, FuzzConfig};
use sstsp_faults::harness::run_case;
use sstsp_faults::plan::{CorruptField, FaultEvent, FaultKind, FaultPlan, FuzzCase};
use sstsp_faults::shrink::shrink;

/// A case whose corrupted disclosed keys a correct verifier rejects — and
/// the planted bug accepts, with cascading checker-visible consequences.
fn trigger_case() -> FuzzCase {
    let mut case = FuzzCase::base(8, 20.0, 7);
    case.plan = FaultPlan {
        seed: 99,
        events: vec![FaultEvent {
            start_bp: 70,
            end_bp: 150,
            kind: FaultKind::Corrupt {
                field: CorruptField::Disclosed,
                p: 0.7,
            },
        }],
    };
    case
}

#[test]
fn planted_bug_is_caught_flagged_shrunk_and_replayable() {
    // Phase 1 — flag off: the correct implementation rejects the corrupted
    // disclosures; the checker stays silent.
    mutation::set_accept_unverified_keys(false);
    let clean = run_case(&trigger_case());
    assert!(
        clean.violations.is_empty(),
        "correct implementation must be clean: {:?}",
        clean.violations
    );

    // Phase 2 — plant the bug: the verifier now accepts beacons keyed by
    // forged disclosures. The KeyFreshness invariant (which re-derives key
    // validity independently via its own chain walk) must fire.
    mutation::set_accept_unverified_keys(true);
    let buggy = run_case(&trigger_case());
    assert!(
        !buggy.violations.is_empty(),
        "planted bug must produce invariant violations"
    );
    assert!(
        buggy
            .violations
            .iter()
            .any(|v| v.to_string().contains("KeyFreshness")),
        "violations must include KeyFreshness: {:?}",
        buggy.violations
    );

    // Phase 3 — shrink to a minimal reproducer.
    let shrunk = shrink(trigger_case(), |c| !run_case(c).violations.is_empty());
    assert_eq!(
        shrunk.plan.events.len(),
        1,
        "minimal reproducer keeps the single triggering event"
    );
    assert!(
        !run_case(&shrunk).violations.is_empty(),
        "shrunk case still fails"
    );
    assert!(
        shrunk.n <= trigger_case().n && shrunk.duration_s <= trigger_case().duration_s,
        "shrinking never grows the scenario"
    );

    // Phase 4 — the one-line spec round-trips and replays deterministically.
    let spec = shrunk.to_string();
    let replayed: FuzzCase = spec.parse().expect("spec parses back");
    assert_eq!(replayed, shrunk);
    let a = run_case(&shrunk);
    let b = run_case(&replayed);
    assert_eq!(a.violations.len(), b.violations.len());
    assert_eq!(a.result.spread.values(), b.result.spread.values());

    // Phase 5 — the fuzzer finds the bug on its own (corrupt-disclosed
    // events are 1/36 of its kind×field space; give it enough iterations).
    let report = fuzz(
        &FuzzConfig {
            iterations: 60,
            master_seed: 2006,
            max_events: 4,
            mesh: false,
            campaign: false,
        },
        |_| {},
    );
    let failure = report.failure.expect("fuzzer must find the planted bug");
    assert!(
        !failure.violations.is_empty(),
        "shrunk fuzz failure still violates"
    );
    assert!(
        failure.shrunk.plan.events.len() <= failure.original.plan.events.len(),
        "shrinking never adds events"
    );

    // Phase 6 — clear the bug: the same reproducers go clean again, proving
    // the violations came from the mutation, not the fault plan.
    mutation::set_accept_unverified_keys(false);
    assert!(run_case(&shrunk).violations.is_empty());
    assert!(run_case(&failure.shrunk).violations.is_empty());
}
