//! Fast-path / legacy-path equivalence: every fixed-seed run must be
//! bit-identical with the engine's SoA fast path enabled (the default) and
//! disabled (`SSTSP_NO_FASTPATH=1`).
//!
//! The fast path serves static intents from the structure-of-arrays
//! snapshot, draws receiver fates in one batch, and skips event scans on
//! quiescent BPs — all claimed to be *observationally invisible*. This
//! test is that claim's enforcement across three surfaces:
//!
//! 1. the pinned golden scenario shapes (single-hop, reference-change
//!    ablation, multi-hop line — where an undecomposed topology disables
//!    the fast path and the switch must be inert), plus the large-n
//!    scenarios the fast path exists for;
//! 2. a bounded batch of fuzzer-generated scenarios (diverse n, duration,
//!    seed, protocol parameters, shortened chains), each run plain under
//!    both settings *and* under the fault harness — full-fidelity hooks
//!    force the legacy path, so there the switch must change nothing at
//!    all;
//! 3. telemetry totals: with recording live, both paths must produce the
//!    identical counter/gauge/distribution snapshot (batched draws consume
//!    exactly as many RNG draws as per-receiver draws did);
//! 4. bridged meshes, which carry a domain decomposition and therefore
//!    ride the per-domain fast path by default;
//! 5. fast-path-safe hooks: a `TraceRecorder` fed by the batched per-BP
//!    callback must record the identical event stream the per-event slow
//!    dispatch produces.
//!
//! Everything lives in one `#[test]`: the switch is a process-global
//! environment variable, so concurrent tests in this binary would race on
//! it.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use sstsp::scenario::TopologySpec;
use sstsp::{Network, ProtocolKind, RunResult, ScenarioConfig, TraceRecorder};
use sstsp_faults::fuzz::{random_case, random_mesh_case};
use sstsp_faults::run_case;

/// Run `f` with the fast path forced on (env cleared) or off (env set).
/// Leaves the variable cleared either way, matching the default.
fn with_fastpath<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    if enabled {
        std::env::remove_var("SSTSP_NO_FASTPATH");
    } else {
        std::env::set_var("SSTSP_NO_FASTPATH", "1");
    }
    let out = f();
    std::env::remove_var("SSTSP_NO_FASTPATH");
    out
}

/// Every observable of a run, compared bit-for-bit (floats via `to_bits`;
/// the full spread series, not just the summary).
fn assert_identical(fast: &RunResult, slow: &RunResult, name: &str) {
    assert_eq!(
        fast.spread.values(),
        slow.spread.values(),
        "{name}: spread series"
    );
    assert_eq!(
        fast.peak_spread_us.to_bits(),
        slow.peak_spread_us.to_bits(),
        "{name}: peak_spread_us"
    );
    assert_eq!(
        fast.sync_latency_s, slow.sync_latency_s,
        "{name}: sync_latency_s"
    );
    assert_eq!(
        fast.steady_error_us, slow.steady_error_us,
        "{name}: steady_error_us"
    );
    assert_eq!(fast.tx_successes, slow.tx_successes, "{name}: tx_successes");
    assert_eq!(
        fast.tx_collisions, slow.tx_collisions,
        "{name}: tx_collisions"
    );
    assert_eq!(
        fast.silent_windows, slow.silent_windows,
        "{name}: silent_windows"
    );
    assert_eq!(
        fast.reference_changes, slow.reference_changes,
        "{name}: reference_changes"
    );
    assert_eq!(
        fast.guard_rejections, slow.guard_rejections,
        "{name}: guard_rejections"
    );
    assert_eq!(
        fast.mutesla_rejections, slow.mutesla_rejections,
        "{name}: mutesla_rejections"
    );
    assert_eq!(fast.retargets, slow.retargets, "{name}: retargets");
    assert_eq!(
        fast.final_reference, slow.final_reference,
        "{name}: final_reference"
    );
    assert_eq!(fast.hop_profile, slow.hop_profile, "{name}: hop_profile");
    assert_eq!(
        fast.domain_report, slow.domain_report,
        "{name}: domain_report"
    );
}

fn compare_plain(cfg: &ScenarioConfig, name: &str) {
    let fast = with_fastpath(true, || Network::build(cfg).run());
    let slow = with_fastpath(false, || Network::build(cfg).run());
    assert_identical(&fast, &slow, name);
}

#[test]
fn fastpath_and_legacy_runs_are_bit_identical() {
    // --- 1. Golden scenario shapes + the large-n fast-path regime -----
    let single_hop = ScenarioConfig::new(ProtocolKind::Sstsp, 8, 12.0, 7);
    let mut ablation = ScenarioConfig::new(ProtocolKind::Sstsp, 8, 12.0, 7)
        .with_m(4)
        .with_l(2);
    ablation.ref_leaves_s = vec![6.0];
    let mut multihop = ScenarioConfig::new(ProtocolKind::Sstsp, 12, 12.0, 7)
        .with_l(3)
        .with_m(6);
    multihop.topology = Some(TopologySpec::Line);
    let large = ScenarioConfig::new(ProtocolKind::Sstsp, 1000, 5.0, 2006);

    compare_plain(&single_hop, "single-hop golden");
    compare_plain(&ablation, "ablation-refchange golden");
    compare_plain(&multihop, "multihop-line golden");
    compare_plain(&large, "large-n 1000");

    // --- 2. Fuzzer-generated scenarios and fault plans ----------------
    let mut rng = ChaCha12Rng::seed_from_u64(2006);
    for i in 0..6 {
        let case = random_case(&mut rng, 4);
        let scenario = case.scenario();
        compare_plain(&scenario, &format!("fuzz scenario {i} ({case})"));

        let fast = with_fastpath(true, || run_case(&case));
        let slow = with_fastpath(false, || run_case(&case));
        assert_identical(
            &fast.result,
            &slow.result,
            &format!("fuzz case {i} harnessed ({case})"),
        );
        assert_eq!(
            fast.violations.len(),
            slow.violations.len(),
            "fuzz case {i}: violation counts"
        );
    }

    // --- 3. Telemetry totals ------------------------------------------
    let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 100, 20.0, 2006);
    let snap_for = |enabled: bool| {
        let _guard = sstsp_telemetry::recording();
        with_fastpath(enabled, || {
            std::hint::black_box(Network::build(&cfg).run());
        });
        sstsp_telemetry::snapshot()
    };
    let fast_snap = snap_for(true);
    let slow_snap = snap_for(false);
    // The `engine.path.*` counters are the one *intended* divergence between
    // the two settings; everything else must match exactly.
    let sans_path = |snap: &sstsp_telemetry::Snapshot| {
        let mut c = snap.counters.clone();
        c.retain(|k, _| !k.starts_with("engine.path."));
        c
    };
    assert_eq!(
        sans_path(&fast_snap),
        sans_path(&slow_snap),
        "telemetry counters"
    );
    assert_eq!(fast_snap.gauges, slow_snap.gauges, "telemetry gauges");
    let render_sans_path = |snap: &sstsp_telemetry::Snapshot| {
        snap.render_text()
            .lines()
            .filter(|l| !l.contains("engine.path."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        render_sans_path(&fast_snap),
        render_sans_path(&slow_snap),
        "telemetry distributions"
    );
    // The single-hop, unhooked run above IS the fast-path regime: prove the
    // path counter says so when the switch is clear, and flips when set.
    assert_eq!(fast_snap.counter("engine.path.fast"), 1, "fast-path taken");
    assert_eq!(fast_snap.counter("engine.path.slow"), 0);
    assert_eq!(slow_snap.counter("engine.path.fast"), 0);
    assert_eq!(slow_snap.counter("engine.path.slow"), 1, "switch honored");

    // --- 4. Mesh topologies --------------------------------------------
    // A bridged mesh carries a domain decomposition, so it rides the
    // per-domain fast path by default; the env switch must fall back to
    // the plain multi-hop loop with bit-identical output, including the
    // per-domain report.
    let mut mesh = ScenarioConfig::new(ProtocolKind::Sstsp, 13, 12.0, 7);
    mesh.topology = Some(TopologySpec::Bridged {
        domains: 2,
        cols: 3,
        rows: 2,
    });
    compare_plain(&mesh, "bridged-mesh golden shape");

    // Telemetry proof that the fast path actually engaged under the
    // decomposed topology with the switch in its default position — and
    // that, engine.path.* aside, both paths leave identical telemetry.
    let mesh_snap_for = |enabled: bool| {
        let _guard = sstsp_telemetry::recording();
        with_fastpath(enabled, || {
            std::hint::black_box(Network::build(&mesh).run());
        });
        sstsp_telemetry::snapshot()
    };
    let mesh_snap = mesh_snap_for(true);
    let mesh_slow_snap = mesh_snap_for(false);
    assert_eq!(
        mesh_snap.counter("engine.path.fast"),
        1,
        "decomposed mesh takes the per-domain fast path"
    );
    assert_eq!(mesh_snap.counter("engine.path.slow"), 0);
    assert_eq!(mesh_slow_snap.counter("engine.path.fast"), 0);
    assert_eq!(
        mesh_slow_snap.counter("engine.path.slow"),
        1,
        "switch honored on meshes"
    );
    assert_eq!(
        sans_path(&mesh_snap),
        sans_path(&mesh_slow_snap),
        "mesh telemetry counters"
    );
    assert_eq!(
        render_sans_path(&mesh_snap),
        render_sans_path(&mesh_slow_snap),
        "mesh telemetry distributions"
    );

    // --- 5. Fast-path-safe hooks ---------------------------------------
    // A `TraceRecorder` declares itself fast-path-safe: the fast path keeps
    // running and feeds it one batched callback per BP. The recorded trace
    // must be event-for-event identical to the per-event slow dispatch —
    // on the single-hop shape and on the bridged mesh (which adds the
    // per-domain election transcript).
    for (cfg, name) in [
        (&single_hop, "single-hop traced"),
        (&mesh, "bridged-mesh traced"),
    ] {
        let run_traced = |enabled: bool| {
            with_fastpath(enabled, || {
                let _guard = sstsp_telemetry::recording();
                let mut tracer = TraceRecorder::new();
                let result = Network::build(cfg).run_with_hook(&mut tracer);
                (result, tracer.into_events(), sstsp_telemetry::snapshot())
            })
        };
        let (fast, fast_events, fast_snap) = run_traced(true);
        let (slow, slow_events, slow_snap) = run_traced(false);
        assert_identical(&fast, &slow, name);
        assert_eq!(fast_events, slow_events, "{name}: trace events");
        assert_eq!(
            fast_snap.counter("engine.path.fast"),
            1,
            "{name}: traced run stays on the fast path"
        );
        assert_eq!(slow_snap.counter("engine.path.fast"), 0, "{name}");
        assert_eq!(
            sans_path(&fast_snap),
            sans_path(&slow_snap),
            "{name}: telemetry counters with hook attached"
        );
    }

    // Fuzzer-generated mesh cases (fresh RNG stream: the seed-2006 stream
    // above must stay byte-stable), plain and harnessed.
    let mut mesh_rng = ChaCha12Rng::seed_from_u64(2606);
    for i in 0..3 {
        let case = random_mesh_case(&mut mesh_rng, 4);
        let scenario = case.scenario();
        compare_plain(&scenario, &format!("mesh fuzz scenario {i} ({case})"));

        let fast = with_fastpath(true, || run_case(&case));
        let slow = with_fastpath(false, || run_case(&case));
        assert_identical(
            &fast.result,
            &slow.result,
            &format!("mesh fuzz case {i} harnessed ({case})"),
        );
        assert_eq!(
            fast.violations.len(),
            slow.violations.len(),
            "mesh fuzz case {i}: violation counts"
        );
    }

    // --- 6. Campaigns force the slow path ------------------------------
    // Campaign members form their intents from live protocol state (tape
    // contents, tracked references) the SoA intent cache cannot represent,
    // so a campaign run must take the slow path even with the switch in
    // its default position — and the switch must then be inert.
    let mut hostile = ScenarioConfig::new(ProtocolKind::Sstsp, 12, 12.0, 7);
    hostile.campaign = Some(sstsp::scenario::CampaignSpec {
        kind: sstsp::scenario::CampaignKind::Coalition {
            error_us: 800.0,
            delay_bps: 2,
        },
        attackers: 3,
        start_s: 5.0,
        end_s: 10.0,
    });
    compare_plain(&hostile, "campaign coalition");
    let campaign_snap_for = |enabled: bool| {
        let _guard = sstsp_telemetry::recording();
        with_fastpath(enabled, || {
            std::hint::black_box(Network::build(&hostile).run());
        });
        sstsp_telemetry::snapshot()
    };
    let campaign_snap = campaign_snap_for(true);
    let campaign_slow_snap = campaign_snap_for(false);
    assert_eq!(
        campaign_snap.counter("engine.path.slow"),
        1,
        "campaign run forces the slow path with the switch clear"
    );
    assert_eq!(campaign_snap.counter("engine.path.fast"), 0);
    assert!(
        campaign_snap.counter("campaign.tx") > 0,
        "campaign members actually transmitted"
    );
    assert_eq!(
        sans_path(&campaign_snap),
        sans_path(&campaign_slow_snap),
        "campaign telemetry counters identical under both switch settings"
    );
    assert_eq!(
        render_sans_path(&campaign_snap),
        render_sans_path(&campaign_slow_snap),
        "campaign telemetry distributions"
    );
}
