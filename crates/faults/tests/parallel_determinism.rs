//! Golden pin: the parallelized fault matrix and fuzz sweep produce
//! byte-identical transcripts at every pool size.
//!
//! `run_matrix` and `fuzz` now fan their cases out over the rayon pool;
//! their whole observable surface — matrix rows, fuzz log lines, the
//! report — must be the same bytes at 1, 2 and 8 threads, or a reported
//! reproducer would stop replaying across machines.

use rayon::ThreadPool;
use sstsp_faults::matrix::run_matrix;
use sstsp_faults::{fuzz, FuzzConfig};

fn matrix_transcript() -> String {
    let mut out = String::new();
    for row in run_matrix() {
        out.push_str(&format!(
            "{} | case={} | violations={} synced={} peak={:.3}\n",
            row.label, row.case, row.violations, row.synced, row.peak_spread_us
        ));
    }
    out
}

fn fuzz_transcript() -> String {
    let cfg = FuzzConfig {
        iterations: 4,
        master_seed: 99,
        max_events: 3,
        mesh: false,
        campaign: false,
    };
    let mut out = String::new();
    let report = fuzz(&cfg, |line| {
        out.push_str(line);
        out.push('\n');
    });
    out.push_str(&format!("cases_run={}\n", report.cases_run));
    match report.failure {
        None => out.push_str("failure=none\n"),
        Some(f) => out.push_str(&format!(
            "failure: original={} shrunk={} violations={}\n",
            f.original,
            f.shrunk,
            f.violations.len()
        )),
    }
    out
}

#[test]
fn matrix_transcript_identical_across_pool_sizes() {
    let seq = ThreadPool::new(1).install(matrix_transcript);
    assert!(seq.lines().count() >= 12, "matrix produced all rows");
    for threads in [2, 8] {
        let par = ThreadPool::new(threads).install(matrix_transcript);
        assert_eq!(par, seq, "matrix transcript diverged at {threads} threads");
    }
}

#[test]
fn fuzz_transcript_identical_across_pool_sizes() {
    let seq = ThreadPool::new(1).install(fuzz_transcript);
    assert!(seq.contains("cases_run=4"), "sweep ran to completion");
    for threads in [2, 8] {
        let par = ThreadPool::new(threads).install(fuzz_transcript);
        assert_eq!(par, seq, "fuzz transcript diverged at {threads} threads");
    }
}
