//! Property pin: the one-line case spec is a true inverse pair —
//! `parse(format(case)) == case` for *every* representable case, across
//! all fault-kind variants and the `mesh=` dimension. Floats print in
//! shortest-round-trip form, so exact equality is the right check.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use sstsp::scenario::{CampaignKind, CampaignSpec};
use sstsp_faults::plan::{CorruptField, FaultEvent, FaultKind, FaultPlan, FuzzCase, MeshSpec};

fn corrupt_field() -> BoxedStrategy<CorruptField> {
    prop_oneof![
        Just(CorruptField::Timestamp),
        Just(CorruptField::Mac),
        Just(CorruptField::Disclosed),
        Just(CorruptField::Truncate),
    ]
    .boxed()
}

fn rejoin() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), (1u64..500).prop_map(Some)].boxed()
}

/// Every [`FaultKind`] variant, parameters drawn across their domains.
fn fault_kind() -> BoxedStrategy<FaultKind> {
    prop_oneof![
        (0.0..=1.0).prop_map(|p| FaultKind::BurstLoss { p }),
        (corrupt_field(), 0.0..=1.0).prop_map(|(field, p)| FaultKind::Corrupt { field, p }),
        (0u32..32, rejoin()).prop_map(|(node, rejoin_after_bps)| FaultKind::Crash {
            node,
            rejoin_after_bps,
        }),
        rejoin().prop_map(|rejoin_after_bps| FaultKind::KillReference { rejoin_after_bps }),
        (0u32..32, -5000.0..5000.0)
            .prop_map(|(node, delta_us)| FaultKind::ClockStep { node, delta_us }),
        (0u32..32).prop_map(|node| FaultKind::ClockFreeze { node }),
        (0.0..=1.0).prop_map(|p| FaultKind::DisclosureLoss { p }),
        Just(FaultKind::Jam),
        (0u32..8, rejoin()).prop_map(|(domain, rejoin_after_bps)| FaultKind::CrashDomain {
            domain,
            rejoin_after_bps,
        }),
        (0u32..4, rejoin()).prop_map(|(bridge, rejoin_after_bps)| FaultKind::KillBridge {
            bridge,
            rejoin_after_bps,
        }),
        (1u64..600).prop_map(|intervals| FaultKind::ChainExhaust { intervals }),
    ]
    .boxed()
}

fn fault_event() -> BoxedStrategy<FaultEvent> {
    (0u64..400, 0u64..200, fault_kind())
        .prop_map(|(start_bp, len, kind)| FaultEvent {
            start_bp,
            end_bp: start_bp + len,
            kind,
        })
        .boxed()
}

/// Every topology dimension, including `None` (single-hop IBSS).
fn mesh() -> BoxedStrategy<Option<MeshSpec>> {
    prop_oneof![
        Just(None),
        Just(Some(MeshSpec::Line)),
        Just(Some(MeshSpec::Ring)),
        (1.0..200.0, 0.5..80.0).prop_map(|(side, range)| Some(MeshSpec::Rgg { side, range })),
        (2u32..5, 1u32..5, 1u32..5).prop_map(|(domains, cols, rows)| {
            Some(MeshSpec::Bridged {
                domains,
                cols,
                rows,
            })
        }),
    ]
    .boxed()
}

/// Every campaign kind with parameters across their domains, plus `None`
/// (honest network). The attacker count is drawn raw here and clamped into
/// the case's station budget in [`fuzz_case`] — the spec parser rejects
/// coalitions the scenario cannot field.
fn campaign() -> BoxedStrategy<Option<(CampaignKind, u32, f64, f64)>> {
    let kind = prop_oneof![
        (0.0..5000.0, 1u32..10).prop_map(|(error_us, delay_bps)| CampaignKind::Coalition {
            error_us,
            delay_bps,
        }),
        (0.0..5000.0).prop_map(|error_us| CampaignKind::SybilFlood { error_us }),
        Just(CampaignKind::RefSlotJam),
    ];
    prop_oneof![
        Just(None),
        (kind, 1u32..8, 0.0..500.0, 0.5..100.0).prop_map(|(kind, raw, start_s, len_s)| Some((
            kind,
            raw,
            start_s,
            start_s + len_s
        ))),
    ]
    .boxed()
}

fn fuzz_case() -> BoxedStrategy<FuzzCase> {
    (
        (2u32..300, 0.5..2000.0, any::<u64>(), 1u32..16),
        (1.0..100000.0, any::<u64>()),
        (mesh(), campaign()),
        proptest::collection::vec(fault_event(), 0..6),
    )
        .prop_map(
            |((n, duration_s, seed, m), (guard_fine_us, plan_seed), (mesh, campaign), events)| {
                let mut case = FuzzCase {
                    n,
                    duration_s,
                    seed,
                    m,
                    guard_fine_us,
                    mesh,
                    campaign: None,
                    plan: FaultPlan {
                        seed: plan_seed,
                        events,
                    },
                };
                if let Some((kind, raw_attackers, start_s, end_s)) = campaign {
                    // Clamp the coalition into the case's station budget;
                    // cases too small for a valid coalition stay honest.
                    let (island, n_eff) = match case.mesh {
                        Some(MeshSpec::Bridged {
                            domains,
                            cols,
                            rows,
                        }) => {
                            let island = domains * cols * rows;
                            (island, island + domains - 1)
                        }
                        _ => (case.n, case.n),
                    };
                    let cap = island.saturating_sub(1).min(n_eff.saturating_sub(2));
                    let mut spec = CampaignSpec {
                        kind,
                        attackers: raw_attackers,
                        start_s,
                        end_s,
                    };
                    if cap >= spec.min_attackers() {
                        spec.attackers = raw_attackers.clamp(spec.min_attackers(), cap);
                        case.campaign = Some(spec);
                    }
                }
                case
            },
        )
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `FromStr` inverts `Display` exactly, for every plan variant.
    #[test]
    fn parse_inverts_format(case in fuzz_case()) {
        let spec = case.to_string();
        prop_assert!(!spec.contains('\n'), "spec must be one line: {spec}");
        let parsed: FuzzCase = spec
            .parse()
            .unwrap_or_else(|e| panic!("own spec `{spec}` failed to parse: {e}"));
        prop_assert!(parsed == case, "round-trip mismatch for `{spec}`");
        // And formatting is a fixed point: format(parse(format(x))) == format(x).
        prop_assert_eq!(parsed.to_string(), spec);
    }
}
