//! Record → replay round-trip and divergence-detection pins.
//!
//! A recorded trace replayed unmodified must be *byte-identical*: the same
//! JSONL file comes back out and the telemetry snapshot matches the
//! recording run's — at every rayon pool size (`scripts/check.sh` re-runs
//! this suite at `RAYON_NUM_THREADS=1,2,8`; the in-process pools here pin
//! the same property without re-spawning the binary). A trace with a
//! single mutated event — a dropped beacon, a reordered disclosure
//! verdict, a flipped domain-election winner — must be detected and
//! located: the first divergence names the exact BP and event kind.

use rayon::ThreadPool;
use sstsp_faults::replay::{replay_trace, to_replayable_jsonl};
use sstsp_faults::{run_case_traced, FuzzCase, ReplayError};
use sstsp_telemetry::reader::TraceReadError;
use sstsp_telemetry::{TraceEvent, TRACE_SCHEMA};

/// Single-hop case with disclosure-loss faults: exercises beacon windows,
/// µTESLA verdicts, and hook drops in the recorded stream.
const SINGLE_HOP: &str = "n=6 dur=10 seed=11 m=4 delta=300 plan=5 discloss@5..60:p=0.5";
/// The golden 2-domain bridged mesh (same shape `mesh_golden.rs` pins).
const BRIDGED: &str = "n=13 dur=12 seed=7 m=4 delta=300 plan=0 mesh=bridged:2:3:2";

/// Record `spec` under telemetry: (case, events, trace file, snapshot).
fn record(spec: &str) -> (FuzzCase, Vec<TraceEvent>, String, String) {
    let case: FuzzCase = spec.parse().expect("valid spec");
    let guard = sstsp_telemetry::recording();
    let outcome = run_case_traced(&case);
    let snap = sstsp_telemetry::snapshot().render_text();
    drop(guard);
    let jsonl = to_replayable_jsonl(&case, &outcome.events).expect("trace encodes");
    (case, outcome.events, jsonl, snap)
}

fn assert_faithful_roundtrip(jsonl: &str, snap: &str) {
    let guard = sstsp_telemetry::recording();
    let report = replay_trace(jsonl).expect("trace replays");
    let replay_snap = sstsp_telemetry::snapshot().render_text();
    drop(guard);
    assert!(
        report.is_faithful(),
        "faithful trace reported divergences: {:?}",
        report.divergences
    );
    assert_eq!(
        report.to_jsonl().expect("replay re-encodes"),
        jsonl,
        "replay did not reproduce the trace byte-identically"
    );
    assert_eq!(
        replay_snap, snap,
        "replay telemetry diverged from recording"
    );
}

#[test]
fn single_hop_replay_is_byte_identical_across_pool_sizes() {
    let (_, _, jsonl, snap) = record(SINGLE_HOP);
    for threads in [1usize, 2, 8] {
        ThreadPool::new(threads).install(|| assert_faithful_roundtrip(&jsonl, &snap));
    }
}

#[test]
fn bridged_mesh_replay_is_byte_identical_across_pool_sizes() {
    let (_, _, jsonl, snap) = record(BRIDGED);
    for threads in [1usize, 2, 8] {
        ThreadPool::new(threads).install(|| assert_faithful_roundtrip(&jsonl, &snap));
    }
}

/// Replay a mutated event list and return (bp, kind) of the first
/// divergence.
fn first_divergence(case: &FuzzCase, events: &[TraceEvent]) -> (u64, String) {
    let jsonl = to_replayable_jsonl(case, events).expect("mutated trace encodes");
    let report = replay_trace(&jsonl).expect("mutated trace still parses");
    assert!(
        !report.is_faithful(),
        "mutation went undetected ({} events)",
        events.len()
    );
    let d = report.first_divergence().expect("divergence present");
    (d.bp, d.kind.clone())
}

#[test]
fn dropped_beacon_is_located_across_pool_sizes() {
    let (case, events, _, _) = record(SINGLE_HOP);
    // Drop a mid-run transmission (not the very first — let the network
    // settle so the divergence is unambiguous).
    let idx = events
        .iter()
        .position(|e| matches!(e, TraceEvent::BeaconTx { bp, .. } if *bp >= 4))
        .expect("recorded stream has beacons");
    let TraceEvent::BeaconTx { bp, .. } = events[idx] else {
        unreachable!()
    };
    let mut mutated = events;
    mutated.remove(idx);
    for threads in [1usize, 2, 8] {
        let (d_bp, d_kind) = ThreadPool::new(threads).install(|| first_divergence(&case, &mutated));
        assert_eq!(d_bp, bp, "wrong BP at {threads} threads");
        assert_eq!(d_kind, "beacon_tx", "wrong kind at {threads} threads");
    }
}

#[test]
fn flipped_beacon_winner_is_located() {
    let (case, events, _, _) = record(SINGLE_HOP);
    let idx = events
        .iter()
        .position(|e| matches!(e, TraceEvent::BeaconTx { bp, .. } if *bp >= 4))
        .expect("recorded stream has beacons");
    let TraceEvent::BeaconTx { bp, src } = events[idx] else {
        unreachable!()
    };
    let mut mutated = events;
    mutated[idx] = TraceEvent::BeaconTx {
        bp,
        src: (src + 1) % case.n,
    };
    let (d_bp, d_kind) = first_divergence(&case, &mutated);
    assert_eq!((d_bp, d_kind.as_str()), (bp, "beacon_tx"));
}

#[test]
fn reordered_disclosure_verdicts_are_located_across_pool_sizes() {
    let (case, events, _, _) = record(SINGLE_HOP);
    // Swap two adjacent receiver verdicts of one beacon: the recorded
    // schedule still matches every window, so only the stream diff can
    // catch this.
    let idx = events
        .windows(2)
        .position(|w| {
            matches!(
                (&w[0], &w[1]),
                (TraceEvent::BeaconRx { .. }, TraceEvent::BeaconRx { .. })
            ) && w[0] != w[1]
        })
        .expect("a beacon reached two receivers");
    let bp = events[idx].bp().expect("rx events carry a bp");
    let mut mutated = events;
    mutated.swap(idx, idx + 1);
    for threads in [1usize, 2, 8] {
        let (d_bp, d_kind) = ThreadPool::new(threads).install(|| first_divergence(&case, &mutated));
        assert_eq!(d_bp, bp, "wrong BP at {threads} threads");
        assert_eq!(d_kind, "beacon_rx", "wrong kind at {threads} threads");
    }
}

#[test]
fn flipped_domain_election_winner_is_located_across_pool_sizes() {
    let (case, events, _, _) = record(BRIDGED);
    let idx = events
        .iter()
        .position(|e| matches!(e, TraceEvent::DomainRefChange { .. }))
        .expect("bridged run elects per-domain references");
    let TraceEvent::DomainRefChange {
        bp,
        domain,
        from,
        to,
    } = events[idx]
    else {
        unreachable!()
    };
    let mut mutated = events;
    mutated[idx] = TraceEvent::DomainRefChange {
        bp,
        domain,
        from,
        to: to.map(|w| (w + 1) % case.scenario().n_nodes),
    };
    for threads in [1usize, 2, 8] {
        let (d_bp, d_kind) = ThreadPool::new(threads).install(|| first_divergence(&case, &mutated));
        assert_eq!(d_bp, bp, "wrong BP at {threads} threads");
        assert_eq!(
            d_kind, "domain_ref_change",
            "wrong kind at {threads} threads"
        );
    }
}

#[test]
fn schema_and_header_errors_are_rejected() {
    let (_, _, jsonl, _) = record("n=4 dur=2 seed=1 m=4 delta=300 plan=0");

    // Future schema version: refused, names both versions.
    let future = jsonl.replacen("\"schema\":1", "\"schema\":999", 1);
    match replay_trace(&future) {
        Err(ReplayError::Read(TraceReadError::SchemaMismatch { found, expected })) => {
            assert_eq!((found, expected), (999, TRACE_SCHEMA));
        }
        Err(other) => panic!("wrong error for future schema: {other}"),
        Ok(_) => panic!("future schema version accepted"),
    }

    // No meta header: not replayable.
    let headless: String = jsonl.lines().skip(1).map(|l| format!("{l}\n")).collect();
    assert!(matches!(
        replay_trace(&headless),
        Err(ReplayError::Read(TraceReadError::MissingMeta))
    ));

    // Unparsable case spec in the header.
    let bad_case = jsonl.replacen("n=4", "q=4", 1);
    match replay_trace(&bad_case) {
        Err(ReplayError::BadCase { case, msg }) => {
            assert!(case.contains("q=4"), "case: {case}");
            assert!(msg.contains("q"), "msg: {msg}");
        }
        Err(other) => panic!("wrong error for bad case spec: {other}"),
        Ok(_) => panic!("unparsable case spec accepted"),
    }
}
