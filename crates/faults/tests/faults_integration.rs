//! Integration tests: every fault class runs under the invariant checker
//! without violations (the implementation rejects or absorbs the fault),
//! fault runs replay deterministically from their one-line specs, and the
//! network recovers where the paper says it should.

use sstsp_faults::harness::run_case;
use sstsp_faults::plan::{CorruptField, FaultEvent, FaultKind, FaultPlan, FuzzCase};

fn case(seed: u64, events: Vec<FaultEvent>) -> FuzzCase {
    let mut case = FuzzCase::base(8, 20.0, 7);
    case.plan = FaultPlan { seed, events };
    case
}

fn ev(start_bp: u64, end_bp: u64, kind: FaultKind) -> FaultEvent {
    FaultEvent {
        start_bp,
        end_bp,
        kind,
    }
}

/// Run a case and assert the invariants held, with the violations in the
/// failure message.
fn assert_clean(case: &FuzzCase) {
    let outcome = run_case(case);
    assert!(
        outcome.violations.is_empty(),
        "case `{case}` violated invariants:\n{}",
        outcome
            .violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn burst_loss_blackout_recovers_clean() {
    // 90 % loss for 5 s: beacons mostly vanish, the synced set thins, and
    // the network must re-converge after the burst without any invariant
    // breach along the way.
    let c = case(1, vec![ev(60, 110, FaultKind::BurstLoss { p: 0.9 })]);
    let outcome = run_case(&c);
    assert!(outcome.violations.is_empty());
    assert!(
        outcome.result.sync_latency_s.is_some(),
        "network synchronized at some point"
    );
}

#[test]
fn corruption_of_every_field_is_rejected_not_accepted() {
    for field in [
        CorruptField::Timestamp,
        CorruptField::Mac,
        CorruptField::Disclosed,
        CorruptField::Truncate,
    ] {
        let c = case(2, vec![ev(60, 120, FaultKind::Corrupt { field, p: 0.6 })]);
        assert_clean(&c);
    }
}

#[test]
fn crash_rejoin_and_reference_kill_stay_clean() {
    let c = case(
        3,
        vec![
            ev(
                70,
                70,
                FaultKind::Crash {
                    node: 3,
                    rejoin_after_bps: Some(40),
                },
            ),
            ev(
                110,
                110,
                FaultKind::KillReference {
                    rejoin_after_bps: Some(50),
                },
            ),
        ],
    );
    let outcome = run_case(&c);
    assert!(outcome.violations.is_empty());
    // Killing the reference forces a re-election.
    assert!(outcome.result.reference_changes >= 2);
}

#[test]
fn clock_glitches_are_exempted_not_flagged() {
    let c = case(
        4,
        vec![
            ev(
                80,
                80,
                FaultKind::ClockStep {
                    node: 2,
                    delta_us: -1500.0,
                },
            ),
            ev(120, 160, FaultKind::ClockFreeze { node: 5 }),
        ],
    );
    assert_clean(&c);
}

#[test]
fn disclosure_loss_is_absorbed_by_chain_recovery() {
    // 80 % of secured beacons dropped at receivers: disclosures go missing
    // and the verifier's chain-walk recovery must authenticate the backlog
    // without ever accepting a stale key.
    let c = case(5, vec![ev(60, 120, FaultKind::DisclosureLoss { p: 0.8 })]);
    assert_clean(&c);
}

#[test]
fn jam_and_chain_exhaustion_stay_clean() {
    let c = case(6, vec![ev(80, 120, FaultKind::Jam)]);
    assert_clean(&c);

    // Chains sized for half the run: past exhaustion nothing is
    // authenticatable and nothing may be accepted (the checker's
    // key-freshness invariant watches exactly that).
    let c = case(
        7,
        vec![ev(100, 199, FaultKind::ChainExhaust { intervals: 100 })],
    );
    let outcome = run_case(&c);
    assert!(outcome.violations.is_empty());
    assert!(
        outcome.result.sync_latency_s.is_some(),
        "synchronized before exhaustion"
    );
}

#[test]
fn fault_runs_replay_deterministically_from_spec() {
    let c = case(
        8,
        vec![
            ev(50, 100, FaultKind::BurstLoss { p: 0.5 }),
            ev(
                80,
                80,
                FaultKind::ClockStep {
                    node: 1,
                    delta_us: 300.0,
                },
            ),
            ev(
                110,
                150,
                FaultKind::Corrupt {
                    field: CorruptField::Mac,
                    p: 0.4,
                },
            ),
        ],
    );
    let spec = c.to_string();
    let reparsed: FuzzCase = spec.parse().expect("spec parses");
    assert_eq!(reparsed, c);
    let a = run_case(&c);
    let b = run_case(&reparsed);
    assert_eq!(
        a.result.spread.values(),
        b.result.spread.values(),
        "same spec, same trajectory"
    );
    assert_eq!(a.result.tx_successes, b.result.tx_successes);
    assert_eq!(a.violations.len(), b.violations.len());
}

#[test]
fn fault_free_harness_run_matches_plain_run() {
    // A harness with an empty plan must not perturb the run at all.
    let c = FuzzCase::base(8, 15.0, 42);
    let scenario = c.scenario();
    let plain = sstsp::engine::Network::build(&scenario).run();
    let outcome = run_case(&c);
    assert_eq!(plain.spread.values(), outcome.result.spread.values());
    assert_eq!(plain.tx_successes, outcome.result.tx_successes);
    assert!(outcome.violations.is_empty());
}
