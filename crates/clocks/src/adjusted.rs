//! SSTSP's adjusted clock `c_i(t_i) = kʲ · t_i + bʲ`.
//!
//! The adjusted clock takes the node's *local unadjusted time* `t_i` (the
//! free-running oscillator) as input and outputs synchronized time. On
//! receiving the `j`-th reference beacon, SSTSP re-derives `(kʲ, bʲ)` from
//! four constraints — equations (2)–(5) of the paper:
//!
//! 1. **Continuity** at the adjustment instant: the new line passes through
//!    the point the old line was at (`kʲ⁻¹ t_iʲ + bʲ⁻¹ = kʲ t_iʲ + bʲ`), so
//!    the clock never jumps.
//! 2. **Convergence**: the adjusted clock is expected to *equal* the
//!    reference clock at the expected arrival of beacon `j + m`
//!    (`c_i((t_iʲ⁺ᵐ)*) = (ts_refʲ⁺ᵐ)*`).
//! 3. **Linearity**: the expected local arrival time of beacon `j + m` is
//!    extrapolated from the last two authenticated samples.
//! 4. **Schedule**: the reference emits beacon `j + m` at `Tʲ⁺ᵐ = T₀ +
//!    (j+m)·BP` (observed at the receiver `t_p` later).
//!
//! `m > 1` is the *aggressiveness* parameter: larger `m` converges more
//! slowly but tolerates reference changes better (Lemma 2 shows the optimal
//! `m` is `l + 3`).
//!
//! [`AdjustedClock::retarget`] solves the system directly (the continuity
//! point plus the predicted target point determine the line); the test
//! module cross-checks it against the paper's closed-form expressions for
//! `kʲ` and `bʲ`.

use serde::{Deserialize, Serialize};

/// One synchronization observation: the pair of simultaneous readings
/// `(t_iʲ, ts_refʲ)` — local unadjusted time at beacon reception, and the
/// reference's adjusted timestamp corrected for transmission/propagation
/// delay (`ts_ref = t_ref + t_p`, estimated at the receiver).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncSample {
    /// Local unadjusted time at beacon reception (µs).
    pub local_us: f64,
    /// Reference adjusted time at the same instant (µs).
    pub ref_us: f64,
}

/// Why a re-targeting attempt was refused (the clock is left unchanged).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetargetError {
    /// The two history samples do not span time (`ts_refʲ⁻¹ ≤ ts_refʲ⁻²`
    /// or `t_iʲ⁻¹ ≤ t_iʲ⁻²`) — cannot estimate relative rate.
    DegenerateHistory,
    /// The predicted convergence instant does not lie in the local future;
    /// the correction would be ill-posed.
    TargetNotInFuture,
    /// The implied rate `kʲ` fell outside the plausible band; with
    /// real-world drifts (±100 ppm) a value far from 1 means corrupt
    /// inputs, not a clock correction.
    UnstableGain {
        /// The rejected rate.
        k: f64,
    },
}

/// Plausibility band for `kʲ`. Honest corrections stay within a few parts
/// per thousand of 1 (offset ≤ guard-time over a horizon of `m` beacon
/// periods); an order-of-magnitude excursion indicates corrupt input.
const K_MIN: f64 = 0.5;
const K_MAX: f64 = 2.0;

/// SSTSP's piecewise-linear adjusted clock.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdjustedClock {
    k: f64,
    b: f64,
    adjustments: u64,
}

impl Default for AdjustedClock {
    fn default() -> Self {
        Self::identity()
    }
}

impl AdjustedClock {
    /// The initial clock: `k = 1, b = 0` (the paper's `j ≤ 2` state), i.e.
    /// adjusted time equals local unadjusted time.
    pub fn identity() -> Self {
        AdjustedClock {
            k: 1.0,
            b: 0.0,
            adjustments: 0,
        }
    }

    /// Construct with explicit parameters (used by the coarse phase, which
    /// steps the offset once before fine-grained synchronization begins).
    pub fn with_params(k: f64, b: f64) -> Self {
        assert!(
            k > 0.0 && k.is_finite(),
            "adjusted clock rate must be positive"
        );
        AdjustedClock {
            k,
            b,
            adjustments: 0,
        }
    }

    /// Current coefficient `kʲ`.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Current offset `bʲ` (µs).
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Number of successful re-targetings.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Adjusted time `c_i(t_i)` for local unadjusted time `local_us`.
    #[inline]
    pub fn value(&self, local_us: f64) -> f64 {
        self.k * local_us + self.b
    }

    /// Replace the rate with `rate`, keeping the clock continuous at
    /// `local_us`. Used when a node assumes the reference role: its current
    /// `kʲ` may encode a *catch-up transient*, not its rate; freezing a
    /// transient (the reference never re-targets) would make the whole
    /// network's time drift at the transient slope.
    ///
    /// # Panics
    /// Panics unless `rate` is positive and finite.
    pub fn set_rate_continuous(&mut self, local_us: f64, rate: f64) {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        let c_now = self.value(local_us);
        self.k = rate;
        self.b = c_now - rate * local_us;
    }

    /// Shift the offset so the clock reads `target_us` at `local_us`,
    /// keeping the rate. This is the *coarse-phase* step adjustment — it may
    /// jump (including backwards) and is only legal before a node joins the
    /// fine-grained phase.
    pub fn step_to(&mut self, local_us: f64, target_us: f64) {
        self.b += target_us - self.value(local_us);
    }

    /// Re-derive `(kʲ, bʲ)` per equations (2)–(5).
    ///
    /// * `now_local_us` — `t_iʲ`, local unadjusted time of the adjustment
    ///   (reception of beacon `j`);
    /// * `prev`, `prev2` — the two most recent *authenticated* samples
    ///   `(t_iʲ⁻¹, ts_refʲ⁻¹)` and `(t_iʲ⁻², ts_refʲ⁻²)`;
    /// * `target_adjusted_us` — `(ts_refʲ⁺ᵐ)* = Tʲ⁺ᵐ + t_p`, where the
    ///   adjusted clock must meet the reference.
    ///
    /// On error the clock is unchanged.
    pub fn retarget(
        &mut self,
        now_local_us: f64,
        prev: SyncSample,
        prev2: SyncSample,
        target_adjusted_us: f64,
    ) -> Result<(), RetargetError> {
        let d_local = prev.local_us - prev2.local_us;
        let d_ref = prev.ref_us - prev2.ref_us;
        if d_local <= 0.0 || d_ref <= 0.0 {
            return Err(RetargetError::DegenerateHistory);
        }
        // Equation (4): extrapolate the local arrival time of beacon j+m
        // from the local-vs-reference slope of the last two samples.
        let slope = d_local / d_ref;
        let pred_local = prev.local_us + slope * (target_adjusted_us - prev.ref_us);
        if pred_local <= now_local_us {
            return Err(RetargetError::TargetNotInFuture);
        }
        // Equation (2): continuity — the new line passes through
        // (now, c_old(now)). Equation (3)+(5): it passes through
        // (pred_local, target).
        let c_now = self.value(now_local_us);
        let k_new = (target_adjusted_us - c_now) / (pred_local - now_local_us);
        if !(K_MIN..=K_MAX).contains(&k_new) || !k_new.is_finite() {
            return Err(RetargetError::UnstableGain { k: k_new });
        }
        self.k = k_new;
        self.b = c_now - k_new * now_local_us;
        self.adjustments += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BP: f64 = 100_000.0; // µs
    const TP: f64 = 25.0; // transmission+propagation delay, µs

    /// The paper's closed-form expressions for kʲ and bʲ (Sec. 3.3),
    /// transcribed verbatim for cross-validation.
    #[allow(clippy::too_many_arguments)]
    fn paper_closed_form(
        k_prev: f64,
        b_prev: f64,
        t_j: f64,
        t_jm1: f64,
        t_jm2: f64,
        ts_jm1: f64,
        ts_jm2: f64,
        t_target: f64,
    ) -> (f64, f64) {
        let c_now = k_prev * t_j + b_prev;
        let num = (t_target - c_now) * (ts_jm1 - ts_jm2);
        let den = (t_jm1 - t_jm2) * (t_target - ts_jm1) + (t_jm1 - t_j) * (ts_jm1 - ts_jm2);
        let k = num / den;
        let b = -num * t_j / den + c_now;
        (k, b)
    }

    /// Drive an (oscillator, adjusted clock) pair against a perfect
    /// reference for `beacons` beacon periods; returns |c_i - ts_ref| at
    /// each beacon reception.
    fn converge(rate: f64, offset: f64, m: usize, beacons: usize) -> Vec<f64> {
        let mut clock = AdjustedClock::identity();
        // Node's local unadjusted clock: local = offset + rate * real.
        let local = |real: f64| offset + rate * real;
        let mut history: Vec<SyncSample> = Vec::new();
        let mut errors = Vec::new();
        for j in 1..=beacons {
            let real = j as f64 * BP + TP; // reception instant of beacon j
            let t_j = local(real);
            let ts_ref = real; // perfect reference: ts_ref = real time
            if history.len() >= 2 {
                let prev = history[history.len() - 1];
                let prev2 = history[history.len() - 2];
                let target = (j + m) as f64 * BP + TP;
                clock
                    .retarget(t_j, prev, prev2, target)
                    .expect("retarget must succeed on clean data");
            }
            errors.push((clock.value(t_j) - ts_ref).abs());
            history.push(SyncSample {
                local_us: t_j,
                ref_us: ts_ref,
            });
        }
        errors
    }

    #[test]
    fn identity_clock_passes_through() {
        let c = AdjustedClock::identity();
        assert_eq!(c.value(12_345.0), 12_345.0);
        assert_eq!(c.k(), 1.0);
        assert_eq!(c.b(), 0.0);
    }

    #[test]
    fn step_to_moves_reading() {
        let mut c = AdjustedClock::identity();
        c.step_to(1_000.0, 900.0);
        assert!((c.value(1_000.0) - 900.0).abs() < 1e-12);
        assert_eq!(c.k(), 1.0, "coarse step leaves the rate alone");
    }

    #[test]
    fn solver_matches_paper_closed_form() {
        // Arbitrary but realistic inputs.
        let (k_prev, b_prev) = (1.00004, -37.5);
        let t_j = 500_012.0;
        let (t_jm1, t_jm2) = (400_008.0, 300_003.0);
        let (ts_jm1, ts_jm2) = (400_025.0, 300_025.0);
        let target = 900_025.0;

        let mut c = AdjustedClock::with_params(k_prev, b_prev);
        c.retarget(
            t_j,
            SyncSample {
                local_us: t_jm1,
                ref_us: ts_jm1,
            },
            SyncSample {
                local_us: t_jm2,
                ref_us: ts_jm2,
            },
            target,
        )
        .unwrap();

        let (k_paper, b_paper) =
            paper_closed_form(k_prev, b_prev, t_j, t_jm1, t_jm2, ts_jm1, ts_jm2, target);
        assert!(
            (c.k() - k_paper).abs() < 1e-12,
            "k: solver {} vs paper {}",
            c.k(),
            k_paper
        );
        assert!(
            (c.b() - b_paper).abs() < 1e-6,
            "b: solver {} vs paper {}",
            c.b(),
            b_paper
        );
    }

    #[test]
    fn continuity_at_adjustment_instant() {
        let mut c = AdjustedClock::with_params(1.0002, 17.0);
        let t_j = 300_000.0;
        let before = c.value(t_j);
        c.retarget(
            t_j,
            SyncSample {
                local_us: 200_000.0,
                ref_us: 200_040.0,
            },
            SyncSample {
                local_us: 100_000.0,
                ref_us: 100_030.0,
            },
            600_040.0,
        )
        .unwrap();
        let after = c.value(t_j);
        assert!(
            (before - after).abs() < 1e-9,
            "clock jumped by {} µs at the adjustment instant",
            after - before
        );
    }

    #[test]
    fn lemma1_converges_for_all_m() {
        for m in 1..=5 {
            let errors = converge(1.0001, 80.0, m, 40);
            let last = *errors.last().unwrap();
            assert!(
                last < 0.5,
                "m={m}: residual error {last} µs after 40 beacons"
            );
        }
    }

    #[test]
    fn lemma1_geometric_decay_rate() {
        // Per Lemma 1 with d ≈ 0: D^{n+1}/D^n ≈ (m-1)/m for m > 1.
        let m = 4;
        let errors = converge(0.99995, 100.0, m, 20);
        // Skip the first few beacons (bootstrap) and the tail (floating
        // point floor), check the ratio where the decay is clean.
        for w in errors[3..10].windows(2) {
            let ratio = w[1] / w[0];
            let expect = (m as f64 - 1.0) / m as f64;
            assert!(
                (ratio - expect).abs() < 0.1,
                "decay ratio {ratio:.4}, expected ≈ {expect:.4}"
            );
        }
    }

    #[test]
    fn m1_converges_immediately() {
        // Lemma 1: for m = 1 the ratio is d/(BP - d) ≈ 0 — one-shot
        // convergence.
        let errors = converge(1.00008, -90.0, 1, 10);
        assert!(
            errors[4] < 1e-6,
            "m=1 should converge within a couple of beacons, error {}",
            errors[4]
        );
    }

    #[test]
    fn adjusted_clock_is_monotone_through_adjustments() {
        // No backward or discontinuous leaps: sample the clock densely
        // across several retargetings and require strict increase.
        let mut clock = AdjustedClock::identity();
        let rate = 1.0001;
        let offset = 100.0;
        let local = |real: f64| offset + rate * real;
        let mut history: Vec<SyncSample> = Vec::new();
        let mut last_c = f64::MIN;
        for j in 1..=12usize {
            let real_rx = j as f64 * BP + TP;
            // Dense sampling of the interval before this beacon.
            for step in 0..100 {
                let real = (j - 1) as f64 * BP + step as f64 * (BP / 100.0);
                if real <= 0.0 {
                    continue;
                }
                let c = clock.value(local(real));
                assert!(c > last_c, "adjusted clock not increasing at j={j}");
                last_c = c;
            }
            let t_j = local(real_rx);
            if history.len() >= 2 {
                clock
                    .retarget(
                        t_j,
                        history[history.len() - 1],
                        history[history.len() - 2],
                        (j + 3) as f64 * BP + TP,
                    )
                    .unwrap();
            }
            history.push(SyncSample {
                local_us: t_j,
                ref_us: real_rx,
            });
        }
    }

    #[test]
    fn degenerate_history_rejected() {
        let mut c = AdjustedClock::identity();
        let s = SyncSample {
            local_us: 100.0,
            ref_us: 100.0,
        };
        assert_eq!(
            c.retarget(200.0, s, s, 1_000.0),
            Err(RetargetError::DegenerateHistory)
        );
        assert_eq!(c.k(), 1.0, "failed retarget must not modify the clock");
    }

    #[test]
    fn past_target_rejected() {
        let mut c = AdjustedClock::identity();
        let prev = SyncSample {
            local_us: 200_000.0,
            ref_us: 200_000.0,
        };
        let prev2 = SyncSample {
            local_us: 100_000.0,
            ref_us: 100_000.0,
        };
        // Target earlier than "now" in reference time.
        assert_eq!(
            c.retarget(300_000.0, prev, prev2, 250_000.0),
            Err(RetargetError::TargetNotInFuture)
        );
    }

    #[test]
    fn wild_inputs_rejected_as_unstable() {
        let mut c = AdjustedClock::identity();
        let prev = SyncSample {
            local_us: 200_000.0,
            ref_us: 200_000.0,
        };
        let prev2 = SyncSample {
            local_us: 100_000.0,
            ref_us: 100_000.0,
        };
        // Adjusted clock wildly behind the target (forged timestamps would
        // produce this): implied k explodes.
        let mut hijacked = AdjustedClock::with_params(1.0, -10_000_000.0);
        let err = hijacked.retarget(300_000.0, prev, prev2, 400_000.0);
        assert!(matches!(err, Err(RetargetError::UnstableGain { .. })));
        // Clean clock still fine.
        assert!(c.retarget(300_000.0, prev, prev2, 400_000.0).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const BP: f64 = 100_000.0;

    proptest! {
        /// Lemma 1 as a property: for any drift within the paper's bounds,
        /// any initial offset within Table 1's range, and any m in 1..=5,
        /// the adjusted clock converges to the reference within 60 beacons.
        #[test]
        fn converges_for_paper_parameter_space(
            rate in 0.9999f64..1.0001,
            offset in -112.0f64..112.0,
            m in 1usize..=5,
        ) {
            let mut clock = AdjustedClock::identity();
            let local = |real: f64| offset + rate * real;
            let mut history: Vec<SyncSample> = Vec::new();
            let mut final_err = f64::MAX;
            for j in 1..=60usize {
                let real = j as f64 * BP;
                let t_j = local(real);
                if history.len() >= 2 {
                    let target = (j + m) as f64 * BP;
                    let _ = clock.retarget(
                        t_j,
                        history[history.len() - 1],
                        history[history.len() - 2],
                        target,
                    );
                }
                final_err = (clock.value(t_j) - real).abs();
                history.push(SyncSample { local_us: t_j, ref_us: real });
            }
            prop_assert!(final_err < 1.0, "residual {final_err} µs");
        }

        /// Continuity is unconditional: whenever retarget succeeds, the
        /// clock value at the adjustment instant is unchanged.
        #[test]
        fn continuity_always_holds(
            k_prev in 0.999f64..1.001,
            b_prev in -1000.0f64..1000.0,
            dt in 1_000.0f64..200_000.0,
            m in 1usize..=5,
        ) {
            let mut c = AdjustedClock::with_params(k_prev, b_prev);
            let t_jm2 = 100_000.0;
            let t_jm1 = t_jm2 + dt;
            let t_j = t_jm1 + dt;
            let prev2 = SyncSample { local_us: t_jm2, ref_us: t_jm2 };
            let prev = SyncSample { local_us: t_jm1, ref_us: t_jm1 };
            let target = t_j + m as f64 * BP;
            let before = c.value(t_j);
            if c.retarget(t_j, prev, prev2, target).is_ok() {
                prop_assert!((c.value(t_j) - before).abs() < 1e-6);
            }
        }
    }
}
