//! The IEEE 802.11 TSF timer.
//!
//! A 64-bit counter with 1 µs resolution driven by the node's oscillator.
//! The TSF synchronization rule (802.11-1999 §11.1.2.4) only ever moves the
//! timer *forward*: on receiving a beacon whose (delay-adjusted) timestamp
//! is later than the local timer, the timer is set to that timestamp.
//!
//! The timer is modeled as a forward-only offset over the node's *local
//! unadjusted time* (the [`crate::Oscillator`] reading), which preserves the
//! hardware-counter property that reads never decrease. Keeping the timer in
//! the local time base (rather than holding an oscillator reference) lets
//! protocol code use it without access to real simulation time.

use serde::{Deserialize, Serialize};

/// A node's TSF timer: `timer(t_i) = t_i + offset`, offset adjusted
/// forward-only by timestamp adoption.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TsfTimer {
    /// Accumulated adjustments, µs.
    offset_us: f64,
    /// Number of timestamp adoptions performed.
    adoptions: u64,
}

impl TsfTimer {
    /// A timer with zero offset (reads the oscillator's local time).
    pub fn new() -> Self {
        TsfTimer {
            offset_us: 0.0,
            adoptions: 0,
        }
    }

    /// Timer value as fractional microseconds at local unadjusted time
    /// `local_us`. The fractional value is what beacon timestamping uses
    /// internally; transmitted timestamps are quantized via
    /// [`TsfTimer::read_us`].
    #[inline]
    pub fn value_us(&self, local_us: f64) -> f64 {
        local_us + self.offset_us
    }

    /// Timer value as the 64-bit µs counter the standard defines
    /// (truncating; clamped at zero for the brief negative phase a large
    /// negative initial offset can produce).
    #[inline]
    pub fn read_us(&self, local_us: f64) -> u64 {
        self.value_us(local_us).max(0.0) as u64
    }

    /// TSF adoption rule: set the timer to `timestamp_us` **iff** the
    /// timestamp is later than the current value. Returns `true` if the
    /// timer moved.
    pub fn adopt_if_later(&mut self, timestamp_us: f64, local_us: f64) -> bool {
        let current = self.value_us(local_us);
        if timestamp_us > current {
            self.offset_us += timestamp_us - current;
            self.adoptions += 1;
            true
        } else {
            false
        }
    }

    /// Unconditionally step the timer to `timestamp_us` (coarse calibration
    /// when joining a network; backward steps permitted because the node is
    /// not yet synchronized).
    pub fn set_to(&mut self, timestamp_us: f64, local_us: f64) {
        let current = self.value_us(local_us);
        self.offset_us += timestamp_us - current;
        self.adoptions += 1;
    }

    /// Current offset over local time, µs.
    pub fn offset_us(&self) -> f64 {
        self.offset_us
    }

    /// How many adoptions have been performed.
    pub fn adoptions(&self) -> u64 {
        self.adoptions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oscillator::Oscillator;
    use simcore::SimTime;

    #[test]
    fn reads_local_time_when_unadjusted() {
        let t = TsfTimer::new();
        assert_eq!(t.read_us(142.9), 142);
    }

    #[test]
    fn adopts_later_timestamp() {
        let mut t = TsfTimer::new();
        assert!(t.adopt_if_later(5_000.0, 1_000.0));
        assert_eq!(t.read_us(1_000.0), 5_000);
        assert_eq!(t.adoptions(), 1);
    }

    #[test]
    fn rejects_earlier_timestamp() {
        let mut t = TsfTimer::new();
        assert!(!t.adopt_if_later(9_999.0, 10_000.0));
        assert_eq!(t.read_us(10_000.0), 10_000);
        assert_eq!(t.adoptions(), 0);
    }

    #[test]
    fn reads_are_monotone_across_adoptions() {
        let osc = Oscillator::new(1.0001, -50.0);
        let mut t = TsfTimer::new();
        let mut last = 0u64;
        for i in 0..1_000u64 {
            let local = osc.local_us(SimTime::from_us(i * 100));
            if i % 97 == 0 {
                t.adopt_if_later(t.value_us(local) + 3.0, local);
            }
            let v = t.read_us(local);
            assert!(v >= last, "timer went backwards: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn adoption_moves_exactly_to_timestamp() {
        let mut t = TsfTimer::new();
        t.adopt_if_later(1_000_000.0, 499_950.0);
        assert!((t.value_us(499_950.0) - 1_000_000.0).abs() < 1e-9);
    }

    #[test]
    fn set_to_permits_backward_step() {
        let mut t = TsfTimer::new();
        t.set_to(2_000.0, 10_000.0);
        assert_eq!(t.read_us(10_000.0), 2_000);
    }

    #[test]
    fn negative_reads_clamped() {
        let mut t = TsfTimer::new();
        t.set_to(-500.0, 0.0);
        assert_eq!(t.read_us(100.0), 0);
        assert_eq!(t.read_us(600.0), 100);
    }

    #[test]
    fn drift_composes_with_oscillator() {
        let osc = Oscillator::new(1.0001, 0.0);
        let mut t = TsfTimer::new();
        let l1 = osc.local_us(SimTime::from_secs(1));
        t.adopt_if_later(2_000_000.0, l1);
        let l2 = osc.local_us(SimTime::from_secs(2));
        // One second later the fast clock has gained 100 µs on real time.
        assert!((t.value_us(l2) - (2_000_000.0 + 1_000_100.0)).abs() < 1e-6);
    }
}
