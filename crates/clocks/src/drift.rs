//! Sampling of oscillator populations.
//!
//! The paper's simulation setup (Sec. 5): relative clock frequency uniform
//! in `[1 − 0.01 %, 1 + 0.01 %]`; for Table 1, initial clock offsets in
//! `(−112 µs, 112 µs)`.

use crate::oscillator::Oscillator;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for sampling a population of oscillators.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DriftModel {
    /// Maximum relative frequency deviation ρ: rates are uniform in
    /// `[1 − ρ, 1 + ρ]`. The paper uses `1e-4` (0.01 %).
    pub max_rate_dev: f64,
    /// Maximum initial phase offset (µs): phases uniform in
    /// `(−max_offset_us, max_offset_us)`. The paper's Table 1 uses 112 µs.
    pub max_offset_us: f64,
}

impl DriftModel {
    /// The paper's simulation parameters: ρ = 0.01 %, offsets ±112 µs.
    pub fn paper() -> Self {
        DriftModel {
            max_rate_dev: 1e-4,
            max_offset_us: 112.0,
        }
    }

    /// Ideal clocks (no drift, no offset) for unit testing.
    pub fn ideal() -> Self {
        DriftModel {
            max_rate_dev: 0.0,
            max_offset_us: 0.0,
        }
    }

    /// Sample one oscillator.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Oscillator {
        let rate = if self.max_rate_dev > 0.0 {
            1.0 + rng.random_range(-self.max_rate_dev..=self.max_rate_dev)
        } else {
            1.0
        };
        let phase = if self.max_offset_us > 0.0 {
            rng.random_range(-self.max_offset_us..self.max_offset_us)
        } else {
            0.0
        };
        Oscillator::new(rate, phase)
    }

    /// Sample a population of `n` oscillators.
    pub fn sample_population<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Oscillator> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn samples_stay_in_bounds() {
        let m = DriftModel::paper();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let o = m.sample(&mut rng);
            assert!(o.rate() >= 1.0 - 1e-4 && o.rate() <= 1.0 + 1e-4);
            assert!(o.phase_us() > -112.0 && o.phase_us() < 112.0);
        }
    }

    #[test]
    fn ideal_model_is_exact() {
        let m = DriftModel::ideal();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let o = m.sample(&mut rng);
        assert_eq!(o.rate(), 1.0);
        assert_eq!(o.phase_us(), 0.0);
    }

    #[test]
    fn population_has_requested_size_and_spread() {
        let m = DriftModel::paper();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let pop = m.sample_population(&mut rng, 500);
        assert_eq!(pop.len(), 500);
        let fastest = pop.iter().map(|o| o.rate()).fold(f64::MIN, f64::max);
        let slowest = pop.iter().map(|o| o.rate()).fold(f64::MAX, f64::min);
        // With 500 uniform samples the extremes should approach the bounds.
        assert!(fastest > 1.0 + 0.5e-4, "fastest {fastest}");
        assert!(slowest < 1.0 - 0.5e-4, "slowest {slowest}");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DriftModel::paper();
        let a = m.sample(&mut ChaCha12Rng::seed_from_u64(7));
        let b = m.sample(&mut ChaCha12Rng::seed_from_u64(7));
        assert_eq!(a.rate(), b.rate());
        assert_eq!(a.phase_us(), b.phase_us());
    }
}
