//! # clocks — the clock substrate for 802.11 time synchronization
//!
//! Three layers, mirroring the paper's clock model (Sec. 3.3 and footnote 2):
//!
//! 1. [`Oscillator`] — a node's free-running hardware oscillator, modeled as
//!    a linear function of real time with a relative frequency drawn from
//!    `[1 − ρ, 1 + ρ]` (the paper uses ρ = 0.01 %) and an initial phase
//!    offset. This produces the node's *local unadjusted time* `t_i`.
//! 2. [`TsfTimer`] — the IEEE 802.11 TSF timer: a 64-bit counter with 1 µs
//!    resolution driven by the oscillator, supporting the TSF adoption rule
//!    ("set to the received timestamp if it is later"). This is the clock
//!    TSF (and the ATSP/TATSP/SATSF baselines) synchronize.
//! 3. [`AdjustedClock`] — SSTSP's software clock `c_i(t_i) = kʲ·t_i + bʲ`
//!    over local unadjusted time, with the continuity-preserving
//!    re-targeting rule of equations (2)–(5). SSTSP synchronizes *this*
//!    clock and never steps the hardware timer, which is how it guarantees
//!    the absence of backward or discontinuous leaps.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adjusted;
pub mod drift;
pub mod oscillator;
pub mod tsf_timer;

pub use adjusted::{AdjustedClock, RetargetError, SyncSample};
pub use drift::DriftModel;
pub use oscillator::Oscillator;
pub use tsf_timer::TsfTimer;
