//! Free-running hardware oscillators.
//!
//! Within the horizon of a simulation run the paper treats each node's
//! hardware clock as a linear function of real time (footnote 2), so an
//! oscillator is `(rate, phase)`: local time `t_i(T) = phase + rate · T`.

use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// A node's free-running oscillator.
///
/// `rate` is the relative frequency with respect to real time (1.0 =
/// perfect; the paper samples uniformly from `[1 − 0.01 %, 1 + 0.01 %]`).
/// `phase_us` is the local reading at real time 0.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Oscillator {
    rate: f64,
    phase_us: f64,
    /// When set, the oscillator output is pinned to this local reading — a
    /// fault-injected stall (e.g. a halted crystal or a firmware hang that
    /// stops servicing the clock register). `None` in normal operation.
    frozen_us: Option<f64>,
}

impl Oscillator {
    /// Create an oscillator with the given relative rate and initial phase.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite — a clock that
    /// stands still or runs backwards breaks every invariant downstream.
    pub fn new(rate: f64, phase_us: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "oscillator rate must be positive and finite, got {rate}"
        );
        assert!(phase_us.is_finite(), "oscillator phase must be finite");
        Oscillator {
            rate,
            phase_us,
            frozen_us: None,
        }
    }

    /// A perfect reference oscillator (rate 1, phase 0).
    pub fn perfect() -> Self {
        Oscillator {
            rate: 1.0,
            phase_us: 0.0,
            frozen_us: None,
        }
    }

    /// Relative frequency with respect to real time.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Local reading at real time 0, in microseconds.
    pub fn phase_us(&self) -> f64 {
        self.phase_us
    }

    /// Local unadjusted time `t_i` (fractional microseconds) at real time
    /// `real`.
    #[inline]
    pub fn local_us(&self, real: SimTime) -> f64 {
        if let Some(frozen) = self.frozen_us {
            return frozen;
        }
        self.phase_us + self.rate * real.as_us_f64()
    }

    /// Fault injection: instantaneously shift the local reading by
    /// `delta_us` (a hardware clock step — e.g. a register glitch or a
    /// brown-out reset losing ticks when negative).
    ///
    /// # Panics
    /// Panics if `delta_us` is not finite.
    pub fn step_by(&mut self, delta_us: f64) {
        assert!(delta_us.is_finite(), "clock step must be finite");
        match self.frozen_us.as_mut() {
            Some(frozen) => *frozen += delta_us,
            None => self.phase_us += delta_us,
        }
    }

    /// Fault injection: freeze the local reading at its value at real time
    /// `at`. Subsequent [`Oscillator::local_us`] calls return that constant
    /// until [`Oscillator::unfreeze`]. Freezing an already-frozen
    /// oscillator is a no-op.
    pub fn freeze(&mut self, at: SimTime) {
        if self.frozen_us.is_none() {
            self.frozen_us = Some(self.local_us(at));
        }
    }

    /// Release a freeze at real time `at`: the oscillator resumes ticking
    /// at its native rate, continuing from the frozen reading (the lost
    /// interval stays lost, like a stalled counter that restarts). No-op if
    /// not frozen.
    pub fn unfreeze(&mut self, at: SimTime) {
        if let Some(frozen) = self.frozen_us.take() {
            self.phase_us = frozen - self.rate * at.as_us_f64();
        }
    }

    /// Whether the oscillator is currently frozen by a fault.
    pub fn is_frozen(&self) -> bool {
        self.frozen_us.is_some()
    }

    /// Invert the clock: the real time at which the local reading equals
    /// `local_us`. Useful for scheduling "when my local clock shows X".
    ///
    /// Returns `None` if that instant lies before the simulation epoch.
    pub fn real_at_local(&self, local_us: f64) -> Option<SimTime> {
        let real_us = (local_us - self.phase_us) / self.rate;
        if real_us < 0.0 {
            return None;
        }
        Some(SimTime::from_ps((real_us * 1e6).round() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn perfect_clock_tracks_real_time() {
        let o = Oscillator::perfect();
        let t = SimTime::from_secs(5);
        assert!((o.local_us(t) - 5e6).abs() < 1e-9);
    }

    #[test]
    fn fast_clock_gains_time() {
        // +100 ppm (the paper's maximum drift).
        let o = Oscillator::new(1.0001, 0.0);
        let t = SimTime::from_secs(100);
        let gained = o.local_us(t) - 100e6;
        assert!((gained - 10_000.0).abs() < 1e-6, "gains 10 ms over 100 s");
    }

    #[test]
    fn slow_clock_loses_time() {
        let o = Oscillator::new(0.9999, 0.0);
        let t = SimTime::from_secs(100);
        let lost = 100e6 - o.local_us(t);
        assert!((lost - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn phase_offsets_apply() {
        let o = Oscillator::new(1.0, -112.0);
        assert!((o.local_us(SimTime::ZERO) + 112.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        let o = Oscillator::new(1.00003, 55.0);
        let t = SimTime::from_ms(12_345);
        let local = o.local_us(t);
        let back = o.real_at_local(local).unwrap();
        let err = back.saturating_since(t).max(t.saturating_since(back));
        assert!(err <= SimDuration::from_ps(2_000), "roundtrip error {err}");
    }

    #[test]
    fn inverse_before_epoch_is_none() {
        let o = Oscillator::new(1.0, 100.0);
        assert!(o.real_at_local(50.0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Oscillator::new(0.0, 0.0);
    }

    #[test]
    fn step_shifts_reading_instantaneously() {
        let mut o = Oscillator::new(1.0001, 10.0);
        let t = SimTime::from_secs(3);
        let before = o.local_us(t);
        o.step_by(800.0);
        assert!((o.local_us(t) - before - 800.0).abs() < 1e-9);
        o.step_by(-2000.0);
        assert!((o.local_us(t) - before + 1200.0).abs() < 1e-9);
    }

    #[test]
    fn freeze_pins_reading_and_unfreeze_resumes_from_it() {
        let mut o = Oscillator::new(1.0002, 0.0);
        let t1 = SimTime::from_secs(10);
        let frozen_val = o.local_us(t1);
        o.freeze(t1);
        assert!(o.is_frozen());
        // Reading stays pinned while frozen, whatever the real time.
        assert_eq!(o.local_us(SimTime::from_secs(25)), frozen_val);
        // Double freeze keeps the original pin.
        o.freeze(SimTime::from_secs(25));
        assert_eq!(o.local_us(SimTime::from_secs(30)), frozen_val);
        // Unfreezing at t2 resumes ticking from the frozen value: the
        // stalled interval is lost for good.
        let t2 = SimTime::from_secs(30);
        o.unfreeze(t2);
        assert!(!o.is_frozen());
        assert!((o.local_us(t2) - frozen_val).abs() < 1e-6);
        let later = SimTime::from_secs(31);
        assert!((o.local_us(later) - frozen_val - 1.0002 * 1e6).abs() < 1e-3);
    }

    #[test]
    fn step_while_frozen_moves_the_pin() {
        let mut o = Oscillator::new(1.0, 0.0);
        o.freeze(SimTime::from_secs(1));
        o.step_by(500.0);
        assert!((o.local_us(SimTime::from_secs(9)) - 1e6 - 500.0).abs() < 1e-9);
    }

    #[test]
    fn unfreeze_without_freeze_is_noop() {
        let mut o = Oscillator::new(1.0, 7.0);
        let before = o.local_us(SimTime::from_secs(2));
        o.unfreeze(SimTime::from_secs(2));
        assert_eq!(o.local_us(SimTime::from_secs(2)), before);
    }

    #[test]
    fn relative_drift_between_two_clocks() {
        let a = Oscillator::new(1.0001, 0.0);
        let b = Oscillator::new(0.9999, 0.0);
        let t = SimTime::from_secs(200);
        let spread = a.local_us(t) - b.local_us(t);
        // 200 ppm apart over 200 s → 40 ms (the scale of the paper's
        // Fig. 3 divergence under attack).
        assert!((spread - 40_000.0).abs() < 1e-6);
    }
}
