//! Synchronization metrics.
//!
//! The y-axis of every figure in the paper is the **maximum clock
//! difference**: the largest pairwise difference between any two nodes'
//! synchronized clocks, sampled at a common real instant. Table 1 adds the
//! **synchronization latency**: the first time the maximum difference drops
//! under the industry threshold of 25 µs (and stays there).

use serde::{Deserialize, Serialize};
use simcore::{SimTime, TimeSeries};

/// Maximum pairwise spread of a set of clock readings: `max − min`.
/// Returns 0 for fewer than two readings.
pub fn max_pairwise_spread(clocks_us: &[f64]) -> f64 {
    if clocks_us.len() < 2 {
        return 0.0;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &c in clocks_us {
        lo = lo.min(c);
        hi = hi.max(c);
    }
    hi - lo
}

/// Streaming recorder of the maximum-clock-difference series across a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpreadTracker {
    series: TimeSeries,
    peak: f64,
}

impl SpreadTracker {
    /// Create a tracker whose series carries the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SpreadTracker {
            series: TimeSeries::new(name),
            peak: 0.0,
        }
    }

    /// Record the spread of `clocks_us` at instant `t`.
    pub fn sample(&mut self, t: SimTime, clocks_us: &[f64]) {
        let spread = max_pairwise_spread(clocks_us);
        self.peak = self.peak.max(spread);
        self.series.push(t, spread);
    }

    /// The recorded series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consume into the series.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }

    /// Largest spread observed so far, `None` before any sample.
    ///
    /// An empty tracker used to report `0.0` — indistinguishable from a run
    /// whose clocks agreed perfectly at every sample, which is the *best*
    /// possible outcome rather than "no data". Callers must now decide
    /// explicitly what an unsampled run means.
    pub fn peak(&self) -> Option<f64> {
        (!self.series.is_empty()).then_some(self.peak)
    }
}

/// The paper's synchronization criterion.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SyncCriterion {
    /// Maximum clock difference regarded as synchronized (µs). The paper
    /// adopts the industrial expectation of 25 µs.
    pub threshold_us: f64,
    /// Number of consecutive samples that must satisfy the threshold; > 1
    /// rejects single-sample flukes.
    pub hold_samples: usize,
}

impl Default for SyncCriterion {
    fn default() -> Self {
        SyncCriterion {
            threshold_us: 25.0,
            hold_samples: 3,
        }
    }
}

impl SyncCriterion {
    /// Synchronization latency: first instant the series stays under the
    /// threshold for `hold_samples` consecutive samples. `None` = never
    /// synchronized.
    pub fn latency(&self, series: &TimeSeries) -> Option<SimTime> {
        series.first_sustained_below(self.threshold_us, self.hold_samples)
    }

    /// Steady-state synchronization error: the maximum spread observed
    /// after synchronization is achieved (Table 1's "synchronization
    /// error" column). `None` if the network never synchronizes.
    pub fn steady_state_error(&self, series: &TimeSeries) -> Option<f64> {
        let start = self.latency(series)?;
        let end = *series.times().last()?;
        series.max_in(start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_basics() {
        assert_eq!(max_pairwise_spread(&[]), 0.0);
        assert_eq!(max_pairwise_spread(&[5.0]), 0.0);
        assert_eq!(max_pairwise_spread(&[1.0, 4.0, 2.0]), 3.0);
        assert_eq!(max_pairwise_spread(&[-10.0, 10.0]), 20.0);
    }

    #[test]
    fn tracker_records_and_peaks() {
        let mut t = SpreadTracker::new("test");
        t.sample(SimTime::from_secs(1), &[0.0, 30.0]);
        t.sample(SimTime::from_secs(2), &[0.0, 10.0]);
        assert_eq!(t.peak(), Some(30.0));
        assert_eq!(t.series().len(), 2);
        assert_eq!(t.series().values(), &[30.0, 10.0]);
    }

    #[test]
    fn empty_tracker_peak_is_none_not_zero() {
        // Regression: "never sampled" used to read as a perfect 0.0 peak.
        let t = SpreadTracker::new("empty");
        assert_eq!(t.peak(), None);
        // A sampled run that genuinely agrees reports Some(0.0) — distinct.
        let mut t = SpreadTracker::new("agree");
        t.sample(SimTime::from_secs(1), &[5.0, 5.0]);
        assert_eq!(t.peak(), Some(0.0));
    }

    #[test]
    fn latency_detection() {
        let mut t = SpreadTracker::new("sync");
        // 50, 40, 20 (blip), 60, then settled under 25.
        let samples = [50.0, 40.0, 20.0, 60.0, 24.0, 20.0, 18.0, 17.0];
        for (i, &v) in samples.iter().enumerate() {
            t.sample(SimTime::from_secs(i as u64), &[0.0, v]);
        }
        let crit = SyncCriterion::default();
        assert_eq!(crit.latency(t.series()), Some(SimTime::from_secs(4)));
    }

    #[test]
    fn never_synchronized() {
        let mut t = SpreadTracker::new("bad");
        for i in 0..10u64 {
            t.sample(SimTime::from_secs(i), &[0.0, 100.0 + i as f64]);
        }
        let crit = SyncCriterion::default();
        assert_eq!(crit.latency(t.series()), None);
        assert_eq!(crit.steady_state_error(t.series()), None);
    }

    #[test]
    fn steady_state_error_is_post_sync_max() {
        let mut t = SpreadTracker::new("s");
        let samples = [100.0, 80.0, 20.0, 15.0, 12.0, 22.0, 9.0];
        for (i, &v) in samples.iter().enumerate() {
            t.sample(SimTime::from_secs(i as u64), &[0.0, v]);
        }
        let crit = SyncCriterion::default();
        assert_eq!(crit.latency(t.series()), Some(SimTime::from_secs(2)));
        assert_eq!(crit.steady_state_error(t.series()), Some(22.0));
    }
}
