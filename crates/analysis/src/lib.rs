//! # sync-analysis — offset filtering and synchronization metrics
//!
//! SSTSP's coarse synchronization phase collects timestamp offsets from
//! overheard beacons, **eliminates biased offsets** (possibly injected by an
//! attacker), and averages the survivors. The paper points at two filters
//! from Song, Zhu & Cao (MASS 2005):
//!
//! * [`threshold`] — a robust median-distance threshold filter (cheap, used
//!   online);
//! * [`gesd`] — the Generalized Extreme Studentized Deviate test (Rosner
//!   1983), which detects up to `r` outliers in approximately normal data
//!   without masking effects.
//!
//! [`metrics`] holds the measurement side: maximum pairwise clock spread
//! (the y-axis of every figure in the paper) and the synchronization-latency
//! detector (Table 1's "synchronized ⇔ max difference ≤ 25 µs" criterion).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gesd;
pub mod metrics;
pub mod threshold;

pub use gesd::{gesd_outliers, GesdConfig};
pub use metrics::{max_pairwise_spread, SpreadTracker, SyncCriterion};
pub use threshold::ThresholdFilter;
