//! Generalized Extreme Studentized Deviate (GESD) test for multiple
//! outliers (Rosner, Technometrics 1983).
//!
//! Song, Zhu & Cao (MASS 2005) — the paper's reference \[7\] — apply GESD to
//! detect malicious time offsets among collected beacon offsets; SSTSP
//! reuses it in the coarse synchronization phase.
//!
//! GESD tests "up to `r` outliers" in an approximately normal sample
//! without the masking problem of repeated Grubbs tests: it computes the
//! studentized extreme deviate `R_i`, removes the extreme point, and
//! repeats `r` times; the number of outliers is the largest `i` with
//! `R_i > λ_i`, where `λ_i` comes from Student-t percentiles.
//!
//! The t-distribution inverse CDF is implemented here from scratch
//! (inverse-normal by Acklam's rational approximation + Hill's expansion
//! for t), accurate to ~1e-4 in the quantile — far tighter than the
//! decision boundaries involved.

use serde::{Deserialize, Serialize};

/// GESD test configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GesdConfig {
    /// Maximum number of outliers tested for (`r`).
    pub max_outliers: usize,
    /// Significance level α (typically 0.05).
    pub alpha: f64,
}

impl Default for GesdConfig {
    fn default() -> Self {
        GesdConfig {
            max_outliers: 10,
            alpha: 0.05,
        }
    }
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |ε| < 1.15e-9).
// Coefficients quoted verbatim from Acklam's publication, trailing zeros
// included.
#[allow(clippy::excessive_precision)]
fn inv_norm(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability out of range");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inv_norm(1.0 - p)
    }
}

/// Inverse CDF of Student's t with `df` degrees of freedom (Hill 1970
/// asymptotic expansion around the normal quantile; good to ~1e-4 for
/// df ≥ 3, exact cases handled separately for tiny df).
fn inv_t(p: f64, df: f64) -> f64 {
    assert!(df >= 1.0, "degrees of freedom must be >= 1");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    // Exact closed forms for df = 1, 2.
    if df == 1.0 {
        return (std::f64::consts::PI * (p - 0.5)).tan();
    }
    if df == 2.0 {
        let a = 2.0 * p - 1.0;
        return a * (2.0 / (1.0 - a * a)).sqrt();
    }
    let x = inv_norm(p);
    let g1 = (x.powi(3) + x) / 4.0;
    let g2 = (5.0 * x.powi(5) + 16.0 * x.powi(3) + 3.0 * x) / 96.0;
    let g3 = (3.0 * x.powi(7) + 19.0 * x.powi(5) + 17.0 * x.powi(3) - 15.0 * x) / 384.0;
    let g4 = (79.0 * x.powi(9) + 776.0 * x.powi(7) + 1482.0 * x.powi(5)
        - 1920.0 * x.powi(3)
        - 945.0 * x)
        / 92_160.0;
    x + g1 / df + g2 / df.powi(2) + g3 / df.powi(3) + g4 / df.powi(4)
}

/// GESD critical value λ_i for the i-th test (1-based) on a sample of
/// size `n` at level α.
fn lambda(i: usize, n: usize, alpha: f64) -> f64 {
    let n_f = n as f64;
    let i_f = i as f64;
    let p = 1.0 - alpha / (2.0 * (n_f - i_f + 1.0));
    let df = n_f - i_f - 1.0;
    let t = inv_t(p, df);
    (n_f - i_f) * t / (((n_f - i_f - 1.0 + t * t) * (n_f - i_f + 1.0)).sqrt())
}

/// Run the GESD test. Returns the indices (into `data`) of detected
/// outliers, most extreme first. Empty when no outliers are detected or
/// the sample is too small (`n < max_outliers + 3`, where the test loses
/// meaning).
pub fn gesd_outliers(data: &[f64], config: GesdConfig) -> Vec<usize> {
    let n = data.len();
    let r = config.max_outliers.min(n.saturating_sub(3));
    if n < 4 || r == 0 {
        return Vec::new();
    }

    // Working copy with original indices.
    let mut working: Vec<(usize, f64)> = data.iter().copied().enumerate().collect();
    let mut removed: Vec<usize> = Vec::with_capacity(r);
    let mut last_significant = 0usize;

    for i in 1..=r {
        let m = working.len() as f64;
        let mean = working.iter().map(|(_, x)| x).sum::<f64>() / m;
        let var = working.iter().map(|(_, x)| (x - mean).powi(2)).sum::<f64>() / (m - 1.0);
        let sd = var.sqrt();
        if sd <= f64::EPSILON {
            break; // all remaining points identical: no further outliers
        }
        // Most extreme point.
        let (pos, &(orig_idx, value)) = working
            .iter()
            .enumerate()
            .max_by(|a, b| {
                let da = (a.1 .1 - mean).abs();
                let db = (b.1 .1 - mean).abs();
                da.partial_cmp(&db).expect("no NaN in offsets")
            })
            .expect("non-empty working set");
        let r_i = (value - mean).abs() / sd;
        if r_i > lambda(i, n, config.alpha) {
            last_significant = i;
        }
        removed.push(orig_idx);
        working.remove(pos);
    }

    removed.truncate(last_significant);
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rosner's 54-point dataset from the NIST/SEMATECH e-Handbook GESD
    /// example; the documented conclusion is exactly 3 outliers
    /// (6.01, 5.42, 5.34).
    const ROSNER: [f64; 54] = [
        -0.25, 0.68, 0.94, 1.15, 1.20, 1.26, 1.26, 1.34, 1.38, 1.43, 1.49, 1.49, 1.55, 1.56, 1.58,
        1.65, 1.69, 1.70, 1.76, 1.77, 1.81, 1.91, 1.94, 1.96, 1.99, 2.06, 2.09, 2.10, 2.14, 2.15,
        2.23, 2.24, 2.26, 2.35, 2.37, 2.40, 2.47, 2.54, 2.62, 2.64, 2.90, 2.92, 2.92, 2.93, 3.21,
        3.26, 3.30, 3.59, 3.68, 4.30, 4.64, 5.34, 5.42, 6.01,
    ];

    #[test]
    fn inv_norm_known_quantiles() {
        assert!((inv_norm(0.5)).abs() < 1e-9);
        assert!((inv_norm(0.975) - 1.959964).abs() < 1e-5);
        assert!((inv_norm(0.05) + 1.644854).abs() < 1e-5);
        assert!((inv_norm(0.999) - 3.090232).abs() < 1e-5);
    }

    #[test]
    fn inv_t_known_quantiles() {
        // Classic t-table values.
        assert!((inv_t(0.975, 1.0) - 12.7062).abs() < 1e-3);
        assert!((inv_t(0.975, 2.0) - 4.30265).abs() < 1e-3);
        assert!((inv_t(0.975, 10.0) - 2.22814).abs() < 5e-3);
        assert!((inv_t(0.95, 30.0) - 1.69726).abs() < 2e-3);
        assert!((inv_t(0.99, 50.0) - 2.40327).abs() < 2e-3);
        // Symmetry.
        assert!((inv_t(0.25, 8.0) + inv_t(0.75, 8.0)).abs() < 1e-12);
    }

    #[test]
    fn rosner_dataset_yields_three_outliers() {
        let out = gesd_outliers(&ROSNER, GesdConfig::default());
        assert_eq!(out.len(), 3, "NIST documents exactly 3 outliers");
        let mut values: Vec<f64> = out.iter().map(|&i| ROSNER[i]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(values, vec![5.34, 5.42, 6.01]);
    }

    #[test]
    fn clean_normal_like_data_has_no_outliers() {
        // Deterministic near-normal sample via inverse CDF stratification.
        let data: Vec<f64> = (1..=40)
            .map(|i| inv_norm(i as f64 / 41.0) * 3.0 + 100.0)
            .collect();
        let out = gesd_outliers(&data, GesdConfig::default());
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn single_gross_outlier_detected() {
        let mut data: Vec<f64> = (1..=30).map(|i| inv_norm(i as f64 / 31.0) * 2.0).collect();
        data.push(500.0);
        let out = gesd_outliers(&data, GesdConfig::default());
        assert_eq!(out, vec![30]);
    }

    #[test]
    fn detects_attacker_cluster_in_offsets() {
        // Coarse-phase scenario: 20 honest offsets around 5 µs (σ ≈ 2),
        // 4 malicious offsets at -30 000 µs.
        let mut data: Vec<f64> = (1..=20)
            .map(|i| 5.0 + inv_norm(i as f64 / 21.0) * 2.0)
            .collect();
        for k in 0..4 {
            data.push(-30_000.0 - k as f64);
        }
        let out = gesd_outliers(&data, GesdConfig::default());
        assert_eq!(out.len(), 4);
        assert!(
            out.iter().all(|&i| i >= 20),
            "flagged honest offsets: {out:?}"
        );
    }

    #[test]
    fn tiny_samples_return_nothing() {
        assert!(gesd_outliers(&[1.0, 2.0], GesdConfig::default()).is_empty());
        assert!(gesd_outliers(&[], GesdConfig::default()).is_empty());
        assert!(gesd_outliers(&[1.0, 2.0, 900.0], GesdConfig::default()).is_empty());
    }

    #[test]
    fn identical_values_no_outliers() {
        let data = vec![7.0; 20];
        assert!(gesd_outliers(&data, GesdConfig::default()).is_empty());
    }

    #[test]
    fn max_outliers_caps_detection() {
        // r = 1 with a single gross outlier: detected.
        let mut data: Vec<f64> = (1..=30).map(|i| inv_norm(i as f64 / 31.0) * 2.0).collect();
        data.push(1_000.0);
        let cfg = GesdConfig {
            max_outliers: 1,
            alpha: 0.05,
        };
        assert_eq!(gesd_outliers(&data, cfg), vec![30]);

        // More outliers than r: the report never exceeds r. (It may be
        // *empty* — with r below the true outlier count the remaining
        // outliers inflate the variance and mask the test; that is GESD's
        // documented limitation, and why r should be chosen generously.)
        data.push(1_010.0);
        data.push(1_020.0);
        let out = gesd_outliers(&data, cfg);
        assert!(out.len() <= 1, "cap violated: {out:?}");
    }
}
