//! Median-distance threshold filtering of clock offsets.
//!
//! The coarse phase collects offsets `timestamp − local` from overheard
//! beacons. An attacker can inject arbitrarily biased offsets; a plain mean
//! would follow them. The filter keeps only offsets within a threshold of
//! the sample median (the median itself is resistant to < 50 % bad
//! samples), then averages the survivors. A *loose* threshold is used in
//! the coarse phase, a tight one (the guard time δ) in the fine phase.

use serde::{Deserialize, Serialize};

/// Median-distance threshold filter.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThresholdFilter {
    /// Maximum |offset − median| to accept, µs.
    pub threshold_us: f64,
}

impl ThresholdFilter {
    /// Create a filter with the given acceptance threshold.
    ///
    /// # Panics
    /// Panics if the threshold is negative or non-finite.
    pub fn new(threshold_us: f64) -> Self {
        assert!(
            threshold_us.is_finite() && threshold_us >= 0.0,
            "threshold must be a non-negative finite value"
        );
        ThresholdFilter { threshold_us }
    }

    /// Median of `values` (interpolated for even lengths). `None` if empty.
    pub fn median(values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("offsets must not be NaN"));
        let n = v.len();
        Some(if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        })
    }

    /// Partition `offsets` into accepted values. Returns the accepted
    /// subset (order preserved); rejected offsets are dropped.
    pub fn accept(&self, offsets: &[f64]) -> Vec<f64> {
        match Self::median(offsets) {
            None => Vec::new(),
            Some(med) => offsets
                .iter()
                .copied()
                .filter(|x| (x - med).abs() <= self.threshold_us)
                .collect(),
        }
    }

    /// The coarse-phase estimate: mean of accepted offsets. `None` when
    /// nothing survives (caller should keep scanning).
    pub fn filtered_mean(&self, offsets: &[f64]) -> Option<f64> {
        let kept = self.accept(offsets);
        if kept.is_empty() {
            None
        } else {
            Some(kept.iter().sum::<f64>() / kept.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(ThresholdFilter::median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(ThresholdFilter::median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(ThresholdFilter::median(&[]), None);
    }

    #[test]
    fn accepts_clean_data() {
        let f = ThresholdFilter::new(10.0);
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(f.accept(&data), data.to_vec());
    }

    #[test]
    fn rejects_biased_offsets() {
        // 7 honest offsets near 5 µs, 3 attacker offsets near -40 000 µs.
        let f = ThresholdFilter::new(50.0);
        let data = [
            4.0, 5.0, 6.0, 5.5, 4.5, 5.2, 4.8, -40_000.0, -39_990.0, -40_010.0,
        ];
        let kept = f.accept(&data);
        assert_eq!(kept.len(), 7);
        assert!(kept.iter().all(|&x| x > 0.0));
        let mean = f.filtered_mean(&data).unwrap();
        assert!((mean - 5.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn attacker_majority_shifts_median_but_filter_still_partitions() {
        // With ≥ 50% malicious samples the median defence breaks down —
        // document the boundary: 5 honest vs 5 malicious.
        let f = ThresholdFilter::new(50.0);
        let data = [
            0.0, 1.0, 2.0, 1.5, 0.5, 9_000.0, 9_001.0, 9_002.0, 8_999.0, 9_003.0,
        ];
        let kept = f.accept(&data);
        // Median sits between the clusters; both are > 50 µs away, so
        // nothing survives — a detectable "cannot synchronize" signal
        // rather than silent poisoning.
        assert!(kept.is_empty());
        assert_eq!(f.filtered_mean(&data), None);
    }

    #[test]
    fn empty_input() {
        let f = ThresholdFilter::new(5.0);
        assert!(f.accept(&[]).is_empty());
        assert_eq!(f.filtered_mean(&[]), None);
    }

    #[test]
    fn single_sample_is_its_own_median() {
        let f = ThresholdFilter::new(5.0);
        assert_eq!(f.filtered_mean(&[42.0]), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_rejected() {
        let _ = ThresholdFilter::new(-1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// With a minority of arbitrarily biased samples, the filtered mean
        /// stays within the honest cluster's spread.
        #[test]
        fn minority_attacker_cannot_move_estimate(
            honest in proptest::collection::vec(-10.0f64..10.0, 7..20),
            evil_bias in prop_oneof![-1.0e6f64..-1000.0, 1000.0f64..1.0e6],
            evil_count in 1usize..3,
        ) {
            let f = ThresholdFilter::new(25.0);
            let mut data = honest.clone();
            for i in 0..evil_count {
                data.push(evil_bias + i as f64);
            }
            if let Some(mean) = f.filtered_mean(&data) {
                prop_assert!((-10.0..=10.0).contains(&mean),
                    "estimate {mean} escaped honest range");
            }
        }

        /// Accepted values always lie within threshold of the median.
        #[test]
        fn accepted_within_threshold(
            data in proptest::collection::vec(-1000.0f64..1000.0, 0..32),
            th in 0.0f64..100.0,
        ) {
            let f = ThresholdFilter::new(th);
            let kept = f.accept(&data);
            if let Some(med) = ThresholdFilter::median(&data) {
                for x in kept {
                    prop_assert!((x - med).abs() <= th);
                }
            }
        }
    }
}
