//! `sstsp-sim` — run one synchronization scenario from the command line.
//!
//! ```text
//! sstsp-sim --protocol sstsp --nodes 100 --duration 60 --seed 1 --chart
//! sstsp-sim --protocol tsf --nodes 300 --duration 1000 --csv out.csv
//! sstsp-sim --protocol sstsp --nodes 500 --m 4 --attack 400,600,30 --chart
//! sstsp-sim trace "n=12 dur=30 seed=7 m=4 delta=300 plan=3 burst@40..90:p=0.85" --out run.jsonl
//! sstsp-sim replay run.jsonl --strict --report
//! ```
//!
//! Flags:
//!
//! | flag | meaning | default |
//! |------|---------|---------|
//! | `--protocol tsf\|atsp\|tatsp\|satsf\|asp\|rk\|sstsp` | protocol | sstsp |
//! | `--nodes N` | station count | 50 |
//! | `--duration S` | simulated seconds | 60 |
//! | `--seed N` | master seed | 1 |
//! | `--m N` / `--l N` | SSTSP parameters | 4 / 1 |
//! | `--guard US` | fine guard time δ in µs | 300 |
//! | `--per P` | packet error rate | 1e-4 |
//! | `--churn PERIOD,FRACTION,ABSENCE` | station churn | off |
//! | `--ref-leaves T1,T2,...` | reference departure times (s) | none |
//! | `--attack START,END,ERROR_US` | fast-beacon attacker | off |
//! | `--campaign SPEC` | coordinated-adversary campaign: `coalition:K:ERR:DELAY:START:END`, `sybil:K:ERR:START:END`, `jamref:K:START:END` | off |
//! | `--jam START,END` | jamming window (repeatable) | none |
//! | `--mesh SPEC` | mesh topology: `line`, `ring`, `rgg:SIDE:RANGE`, `bridged:D:C:R` | off |
//! | `--chart` | print the ASCII spread chart | off |
//! | `--csv PATH` | write the spread series as CSV | off |
//!
//! A `bridged` mesh fixes the station count to `D·C·R + D − 1` (islands
//! plus gateways), overriding `--nodes`, and switches SSTSP to per-domain
//! reference election; the run report then includes one line per collision
//! domain.
//!
//! The `trace` subcommand runs a fault-plan case spec — the same one-line
//! format the scenario fuzzer prints for failing cases — under trace
//! recording, and emits a self-contained JSONL trace file (a versioned
//! `meta` header with the case spec, then the structured event stream:
//! beacon tx/rx, receiver verdicts, hook drops, reference changes, per-BP
//! spreads, invariant violations) to stdout or `--out PATH`. The merged
//! telemetry metrics snapshot goes to stderr.
//!
//! The `replay` subcommand is its inverse: `sstsp-sim replay FILE` parses
//! a recorded trace, re-executes the case with the engine driven from the
//! recorded beacon schedule, and cross-checks every event against the live
//! model. Divergences print as `BP <n> [<kind>]: expected ..., recorded
//! ...` lines. Flags: `--report` prints every divergence (default: first
//! only), `--strict` exits 1 when any divergence is found, `--out PATH`
//! writes the regenerated trace (byte-identical to the input for a
//! faithful recording). Unreadable or schema-mismatched traces exit 2.

use sstsp::scenario::{AttackerSpec, CampaignSpec, ChurnConfig, JamWindow};
use sstsp::{Network, ProtocolKind, ScenarioConfig};
use sstsp_faults::plan::{FuzzCase, MeshSpec};
use sstsp_faults::{replay_trace, run_case_traced, to_replayable_jsonl};

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nsee `sstsp-sim` source header for flags");
    std::process::exit(2)
}

fn parse_list(s: &str, n: usize, flag: &str) -> Vec<f64> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad number '{p}' in {flag}")))
        })
        .collect();
    if n > 0 && parts.len() != n {
        usage(&format!("{flag} expects {n} comma-separated numbers"));
    }
    parts
}

/// `sstsp-sim trace <SPEC>... [--out PATH]` — replay a fuzzer case spec with
/// trace recording and dump the run as JSONL. Unquoted specs arrive as
/// several argv words; all non-flag arguments are joined back with spaces.
fn run_trace(args: &[String]) -> ! {
    let mut spec_parts: Vec<&str> = Vec::new();
    let mut out = None::<String>;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--out needs a value"))
                        .clone(),
                )
            }
            other if other.starts_with("--") => usage(&format!("unknown trace flag '{other}'")),
            other => spec_parts.push(other),
        }
    }
    if spec_parts.is_empty() {
        usage("trace needs a case spec, e.g. `trace \"n=12 dur=30 seed=7 m=4 delta=300 plan=3 burst@40..90:p=0.85\"`");
    }
    let spec = spec_parts.join(" ");
    let case: FuzzCase = spec
        .parse()
        .unwrap_or_else(|e| usage(&format!("bad case spec: {e}")));

    let guard = sstsp_telemetry::recording();
    let outcome = run_case_traced(&case);
    let snap = sstsp_telemetry::snapshot();
    drop(guard);

    let jsonl = to_replayable_jsonl(&case, &outcome.events).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    match out {
        Some(path) => {
            std::fs::write(&path, &jsonl).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "wrote {} events (+ meta header) to {path}",
                outcome.events.len()
            );
        }
        None => print!("{jsonl}"),
    }

    eprintln!("case:       {case}");
    eprintln!(
        "result:     peak spread {:.1} µs, {} tx ok, {} guard / {} µTESLA rejections",
        outcome.result.peak_spread_us,
        outcome.result.tx_successes,
        outcome.result.guard_rejections,
        outcome.result.mutesla_rejections,
    );
    eprintln!("violations: {}", outcome.violations.len());
    for v in &outcome.violations {
        eprintln!("  {v}");
    }
    eprintln!("--- telemetry ---\n{}", snap.render_text());
    std::process::exit(if outcome.violations.is_empty() { 0 } else { 1 })
}

/// `sstsp-sim replay FILE [--strict] [--report] [--out PATH]` — re-execute
/// a recorded trace and cross-check it against the live model.
fn run_replay(args: &[String]) -> ! {
    let mut file = None::<String>;
    let mut strict = false;
    let mut report_all = false;
    let mut out = None::<String>;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--report" => report_all = true,
            "--out" => {
                out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--out needs a value"))
                        .clone(),
                )
            }
            other if other.starts_with("--") => usage(&format!("unknown replay flag '{other}'")),
            other if file.is_none() => file = Some(other.to_string()),
            other => usage(&format!("replay takes one trace file, got extra '{other}'")),
        }
    }
    let file = file
        .unwrap_or_else(|| usage("replay needs a trace file (from `sstsp-sim trace --out ...`)"));
    let input = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        std::process::exit(2);
    });

    let guard = sstsp_telemetry::recording();
    let report = replay_trace(&input).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let snap = sstsp_telemetry::snapshot();
    drop(guard);

    if let Some(path) = out {
        let jsonl = report.to_jsonl().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        std::fs::write(&path, &jsonl).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote {} regenerated events (+ meta header) to {path}",
            report.events.len()
        );
    }

    eprintln!("case:       {}", report.case);
    eprintln!(
        "result:     peak spread {:.1} µs, {} tx ok, {} guard / {} µTESLA rejections",
        report.result.peak_spread_us,
        report.result.tx_successes,
        report.result.guard_rejections,
        report.result.mutesla_rejections,
    );
    eprintln!("violations: {}", report.violations.len());
    match report.divergences.len() {
        0 => println!(
            "replay faithful: {} events byte-identical",
            report.events.len()
        ),
        n => {
            println!("{n} divergence(s); first:");
            let shown = if report_all { n } else { 1 };
            for d in report.divergences.iter().take(shown) {
                println!("  {d}");
            }
        }
    }
    eprintln!("--- telemetry ---\n{}", snap.render_text());
    std::process::exit(if strict && !report.is_faithful() {
        1
    } else {
        0
    })
}

/// Reject a malformed `start..end` sim-time window: non-finite bounds,
/// negative start, or an empty/inverted window.
fn validate_window(flag: &str, start: f64, end: f64) {
    if !start.is_finite() || !end.is_finite() {
        usage(&format!(
            "{flag}: window bounds must be finite (got {start}..{end})"
        ));
    }
    if start < 0.0 {
        usage(&format!("{flag}: window start must be >= 0 (got {start})"));
    }
    if end <= start {
        usage(&format!(
            "{flag}: window must satisfy end > start (got {start}..{end})"
        ));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        run_trace(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("replay") {
        run_replay(&args[1..]);
    }
    let mut protocol = ProtocolKind::Sstsp;
    let mut nodes = 50u32;
    let mut duration = 60.0f64;
    let mut seed = 1u64;
    let mut m = None::<u32>;
    let mut l = None::<u32>;
    let mut guard = None::<f64>;
    let mut per = None::<f64>;
    let mut churn = None::<ChurnConfig>;
    let mut ref_leaves: Vec<f64> = Vec::new();
    let mut attack = None::<AttackerSpec>;
    let mut campaign = None::<CampaignSpec>;
    let mut jams: Vec<JamWindow> = Vec::new();
    let mut mesh = None::<MeshSpec>;
    let mut chart = false;
    let mut csv = None::<String>;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
                .clone()
        };
        match flag.as_str() {
            "--protocol" => {
                protocol = match val().to_lowercase().as_str() {
                    "tsf" => ProtocolKind::Tsf,
                    "atsp" => ProtocolKind::Atsp,
                    "tatsp" => ProtocolKind::Tatsp,
                    "satsf" => ProtocolKind::Satsf,
                    "asp" => ProtocolKind::Asp,
                    "rk" => ProtocolKind::Rk,
                    "sstsp" => ProtocolKind::Sstsp,
                    other => usage(&format!("unknown protocol '{other}'")),
                }
            }
            "--nodes" => nodes = val().parse().unwrap_or_else(|_| usage("bad --nodes")),
            "--duration" => duration = val().parse().unwrap_or_else(|_| usage("bad --duration")),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--m" => m = Some(val().parse().unwrap_or_else(|_| usage("bad --m"))),
            "--l" => l = Some(val().parse().unwrap_or_else(|_| usage("bad --l"))),
            "--guard" => guard = Some(val().parse().unwrap_or_else(|_| usage("bad --guard"))),
            "--per" => per = Some(val().parse().unwrap_or_else(|_| usage("bad --per"))),
            "--churn" => {
                let v = parse_list(&val(), 3, "--churn");
                if !v.iter().all(|x| x.is_finite()) {
                    usage("--churn: values must be finite");
                }
                if v[0] <= 0.0 {
                    usage(&format!("--churn: period must be > 0 (got {})", v[0]));
                }
                if !(0.0..=1.0).contains(&v[1]) {
                    usage(&format!(
                        "--churn: fraction must be in [0, 1] (got {})",
                        v[1]
                    ));
                }
                if v[2] < 0.0 {
                    usage(&format!("--churn: absence must be >= 0 (got {})", v[2]));
                }
                churn = Some(ChurnConfig {
                    period_s: v[0],
                    fraction: v[1],
                    absence_s: v[2],
                });
            }
            "--ref-leaves" => ref_leaves = parse_list(&val(), 0, "--ref-leaves"),
            "--attack" => {
                let v = parse_list(&val(), 3, "--attack");
                validate_window("--attack", v[0], v[1]);
                if !v[2].is_finite() {
                    usage(&format!("--attack: error_us must be finite (got {})", v[2]));
                }
                attack = Some(AttackerSpec {
                    start_s: v[0],
                    end_s: v[1],
                    error_us: v[2],
                });
            }
            "--campaign" => {
                campaign = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("bad --campaign: {e}"))),
                )
            }
            "--jam" => {
                let v = parse_list(&val(), 2, "--jam");
                validate_window("--jam", v[0], v[1]);
                jams.push(JamWindow {
                    start_s: v[0],
                    end_s: v[1],
                });
            }
            "--mesh" => {
                mesh = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("bad --mesh: {e}"))),
                )
            }
            "--chart" => chart = true,
            "--csv" => csv = Some(val()),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }

    if !duration.is_finite() || duration <= 0.0 {
        usage(&format!(
            "--duration must be a finite positive number of seconds (got {duration})"
        ));
    }

    let mut cfg = ScenarioConfig::new(protocol, nodes, duration, seed);
    if let Some(m) = m {
        cfg = cfg.with_m(m);
    }
    if let Some(l) = l {
        cfg = cfg.with_l(l);
    }
    if let Some(g) = guard {
        cfg.protocol_config.guard_fine_us = g;
    }
    if let Some(p) = per {
        cfg.per = p;
    }
    cfg.churn = churn;
    cfg.ref_leaves_s = ref_leaves;
    cfg.attacker = attack;
    cfg.jam_windows = jams;
    if let Some(m) = mesh {
        let topo = m.topology();
        if let Some(required) = topo.required_nodes() {
            cfg.n_nodes = required;
        }
        cfg.topology = Some(topo);
    }
    if let Some(c) = campaign {
        cfg.campaign = Some(c);
        // Validate the coalition against the (possibly mesh-derived)
        // station budget here so a bad flag is a usage error, not an
        // engine assertion.
        let island = match cfg.topology {
            Some(sstsp::scenario::TopologySpec::Bridged {
                domains,
                cols,
                rows,
            }) => domains * cols * rows,
            _ => cfg.n_nodes,
        };
        if c.attackers >= island || c.attackers + 2 > cfg.n_nodes {
            usage(&format!(
                "--campaign: `attackers` = {} needs more stations than the \
                 scenario provides ({} total, {island} compromisable)",
                c.attackers, cfg.n_nodes
            ));
        }
    }

    eprintln!(
        "running {} × {} stations for {} s (seed {seed})...",
        cfg.protocol.name(),
        cfg.n_nodes,
        cfg.duration_s
    );
    let r = Network::build(&cfg).run();

    if chart {
        println!("{}", sstsp::report::render_series_chart(&r.spread, 72, 12));
    }
    println!("protocol:            {}", r.protocol);
    println!("stations:            {}", r.n_nodes);
    println!(
        "sync latency:        {}",
        r.sync_latency_s
            .map_or("never".into(), |v| format!("{v:.2} s"))
    );
    println!(
        "steady error:        {}",
        r.steady_error_us
            .map_or("-".into(), |v| format!("{v:.1} µs"))
    );
    println!("peak spread:         {:.1} µs", r.peak_spread_us);
    println!(
        "beacons:             {} ok / {} collided / {} silent / {} jammed",
        r.tx_successes, r.tx_collisions, r.silent_windows, r.jammed_windows
    );
    println!("reference changes:   {}", r.reference_changes);
    if let Some(report) = &r.domain_report {
        for d in report {
            println!(
                "domain {}:            {} stations, reference {}, end spread {}",
                d.domain,
                d.nodes,
                d.final_reference.map_or("none".into(), |id| id.to_string()),
                d.end_spread_us.map_or("-".into(), |v| format!("{v:.1} µs")),
            );
        }
    }
    if cfg.attacker.is_some() || cfg.campaign.is_some() {
        println!("attacker became ref: {}", r.attacker_became_reference);
    }
    if r.guard_rejections + r.mutesla_rejections > 0 {
        println!(
            "rejected beacons:    {} guard / {} µTESLA",
            r.guard_rejections, r.mutesla_rejections
        );
    }
    if r.alerts > 0 {
        println!("attack alerts:       {}", r.alerts);
    }

    if let Some(path) = csv {
        std::fs::write(&path, r.spread.to_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {} samples to {path}", r.spread.len());
    }
}
