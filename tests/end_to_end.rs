//! End-to-end integration tests spanning every crate: engine + MAC +
//! channel + clocks + crypto + protocols.

use simcore::SimTime;
use sstsp::{Network, ProtocolKind, ScenarioConfig};

#[test]
fn every_protocol_runs_to_completion() {
    for kind in [
        ProtocolKind::Tsf,
        ProtocolKind::Atsp,
        ProtocolKind::Tatsp,
        ProtocolKind::Satsf,
        ProtocolKind::Sstsp,
    ] {
        let cfg = ScenarioConfig::new(kind, 10, 15.0, 3);
        let r = Network::build(&cfg).run();
        assert_eq!(r.spread.len() as u64, cfg.total_bps(), "{kind:?}");
        assert_eq!(r.protocol, kind.name());
        assert!(r.tx_successes > 0, "{kind:?} never transmitted a beacon");
    }
}

#[test]
fn sstsp_beats_tsf_at_moderate_scale() {
    let sstsp = Network::build(&ScenarioConfig::new(ProtocolKind::Sstsp, 40, 30.0, 21)).run();
    let tsf = Network::build(&ScenarioConfig::new(ProtocolKind::Tsf, 40, 30.0, 21)).run();
    let s_tail = sstsp
        .spread
        .max_in(SimTime::from_secs(20), SimTime::from_secs(30))
        .unwrap();
    let t_tail = tsf
        .spread
        .max_in(SimTime::from_secs(20), SimTime::from_secs(30))
        .unwrap();
    assert!(
        s_tail * 5.0 < t_tail,
        "SSTSP ({s_tail:.1} µs) should be far tighter than TSF ({t_tail:.1} µs)"
    );
}

#[test]
fn runs_are_bit_deterministic() {
    let cfg = ScenarioConfig::paper(ProtocolKind::Sstsp, 12, 9).with_m(3);
    let mut cfg = cfg;
    cfg.duration_s = 30.0;
    cfg.ref_leaves_s = vec![10.0];
    let a = Network::build(&cfg).run();
    let b = Network::build(&cfg).run();
    assert_eq!(a.spread.values(), b.spread.values());
    assert_eq!(a.tx_successes, b.tx_successes);
    assert_eq!(a.reference_changes, b.reference_changes);
    assert_eq!(a.retargets, b.retargets);
}

#[test]
fn churn_departures_and_returns_are_survived() {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 20, 60.0, 31);
    cfg.churn = Some(sstsp::ChurnConfig {
        period_s: 15.0,
        fraction: 0.2,
        absence_s: 10.0,
    });
    let r = Network::build(&cfg).run();
    assert!(r.sync_latency_s.is_some());
    // Returned nodes run the coarse phase and rejoin; the network ends
    // synchronized with everyone back.
    let tail = r
        .spread
        .max_in(SimTime::from_secs(55), SimTime::from_secs(60))
        .unwrap();
    assert!(tail < 25.0, "post-churn spread {tail} µs");
    assert!(r.retargets > 1_000, "members keep retargeting");
}

#[test]
fn reference_departures_trigger_reelection() {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 15, 40.0, 41);
    cfg.ref_leaves_s = vec![15.0, 25.0];
    let r = Network::build(&cfg).run();
    assert!(
        r.reference_changes >= 3,
        "expected ≥3 reference changes (initial + 2 departures), got {}",
        r.reference_changes
    );
    let tail = r
        .spread
        .max_in(SimTime::from_secs(35), SimTime::from_secs(40))
        .unwrap();
    assert!(tail < 25.0, "network re-synchronized after departures");
}

#[test]
fn sstsp_clock_continuity_no_leaps() {
    // The headline SSTSP property at full-system level: sampled each BP,
    // every honest clock advances by ≈ one BP — no steps, no backward
    // leaps. We verify on the spread series' smoothness instead of raw
    // clocks: a discontinuous leap of any single clock would spike the
    // pairwise spread by the leap size.
    let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 15, 30.0, 51);
    let r = Network::build(&cfg).run();
    let values = r.spread.values();
    // After convergence, consecutive spread samples move by ≤ a few µs.
    let latency_idx = values.iter().position(|&v| v < 25.0).unwrap();
    for w in values[latency_idx + 50..].windows(2) {
        assert!(
            (w[1] - w[0]).abs() < 15.0,
            "spread jumped {} → {} µs mid-run",
            w[0],
            w[1]
        );
    }
}

#[test]
fn atsp_family_improves_on_tsf() {
    // The related-work protocols should sit between TSF and SSTSP.
    let n = 50;
    let tail = |kind| {
        let r = Network::build(&ScenarioConfig::new(kind, n, 40.0, 61)).run();
        r.spread
            .max_in(SimTime::from_secs(25), SimTime::from_secs(40))
            .unwrap()
    };
    let tsf = tail(ProtocolKind::Tsf);
    let atsp = tail(ProtocolKind::Atsp);
    let satsf = tail(ProtocolKind::Satsf);
    assert!(
        atsp < tsf && satsf < tsf,
        "priority schemes must beat TSF: tsf {tsf:.0}, atsp {atsp:.0}, satsf {satsf:.0}"
    );
}

#[test]
fn packet_errors_do_not_derail_sstsp() {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 15, 40.0, 71);
    cfg.per = 0.02; // 200× the paper's loss rate
    let r = Network::build(&cfg).run();
    assert!(r.sync_latency_s.is_some());
    let tail = r
        .spread
        .max_in(SimTime::from_secs(30), SimTime::from_secs(40))
        .unwrap();
    assert!(tail < 25.0, "lossy-channel spread {tail} µs");
}
