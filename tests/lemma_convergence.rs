//! System-level checks of the paper's two lemmas.
//!
//! * **Lemma 1**: any node's adjusted clock converges to `ts_ref`
//!   geometrically, with per-BP ratio ≈ `(m−1)/m` for `m > 1`, and the
//!   steady synchronization error is bounded by `2ε`.
//! * **Lemma 2**: when the reference changes, the error immediately after
//!   re-adjustment is bounded by `(l+2)·D⁻`, and the optimal aggressiveness
//!   is `m = l + 3`.
//!
//! The clocks-crate unit tests verify these on noiseless inputs; here they
//! are exercised through the full stack (engine, MAC, channel, µTESLA).

use simcore::SimTime;
use sstsp::{Network, ProtocolKind, ScenarioConfig};

/// Lemma 1, system level: a calm SSTSP network converges and stays within
/// a small multiple of the receiver estimation error ε (ours is bounded by
/// the 1 µs timestamp quantization + ≤1 µs sender jitter + ≤1 µs receiver
/// jitter on each of the samples the rate estimate uses).
#[test]
fn lemma1_steady_error_bounded_by_2_epsilon() {
    let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 20, 60.0, 5);
    let r = Network::build(&cfg).run();
    assert!(r.sync_latency_s.is_some(), "must converge");
    let tail = r
        .spread
        .max_in(SimTime::from_secs(30), SimTime::from_secs(60))
        .unwrap();
    // ε ≤ ~3 µs per observation; the m-fold extrapolation amplifies noise,
    // so the paper's 2ε bound translates to a small-multiple bound here.
    assert!(tail < 20.0, "steady spread {tail} µs");
}

/// Lemma 1: convergence is geometric — from the moment the reference is
/// up, the spread decays by roughly (m-1)/m per BP until it hits the noise
/// floor, so log-spread decreases ~linearly. We check the coarse
/// consequence: convergence from ±112 µs to <25 µs happens within the
/// Lemma's predicted beacon count (plus election and validation overhead).
#[test]
fn lemma1_convergence_speed_matches_geometric_rate() {
    for (m, max_latency_s) in [(1u32, 3.0f64), (3, 4.0), (5, 6.0)] {
        let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 20, 30.0, 11).with_m(m);
        let r = Network::build(&cfg).run();
        let latency = r.sync_latency_s.expect("converges");
        // Election ≈ a few BPs (randomized deferral), validation 2 BPs,
        // then log_{m/(m-1)}(112/25) BPs of decay.
        assert!(
            latency <= max_latency_s,
            "m={m}: latency {latency} s exceeds geometric-rate budget {max_latency_s} s"
        );
    }
}

/// Lemma 2: a reference change never blows the error up by more than
/// (l+2)×, and the network re-converges. We force a departure and compare
/// the spread just before with the worst spread in the re-adjustment
/// window.
#[test]
fn lemma2_reference_change_bounded() {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 20, 60.0, 13)
        .with_m(4)
        .with_l(1);
    cfg.ref_leaves_s = vec![30.0];
    let r = Network::build(&cfg).run();

    let pre = r
        .spread
        .max_in(SimTime::from_secs_f64(29.0), SimTime::from_secs_f64(30.0))
        .unwrap();
    let post = r
        .spread
        .max_in(SimTime::from_secs_f64(30.0), SimTime::from_secs_f64(40.0))
        .unwrap();
    // The paper's bound is on the *individual* error D⁺ < (l+2)·D⁻ plus
    // the drift accumulated over the (l+3)-BP gap; at the spread level we
    // allow the gap drift (≈ 2e-4 × gap) on top.
    let gap_bps = (cfg.protocol_config.l + 3) as f64 + 20.0; // election deferral slack
    let gap_drift_us = 2e-4 * gap_bps * cfg.protocol_config.bp_us;
    let bound = (cfg.protocol_config.l + 2) as f64 * pre.max(1.0) + gap_drift_us;
    assert!(
        post <= bound,
        "post-change spread {post:.1} µs exceeds Lemma-2 budget {bound:.1} µs (pre {pre:.1})"
    );

    // And the network re-converges afterwards.
    let tail = r
        .spread
        .max_in(SimTime::from_secs(50), SimTime::from_secs(60))
        .unwrap();
    assert!(tail < 25.0, "did not re-converge: {tail} µs");
}

/// Lemma 2's design guidance: m = l + 3 minimizes the disturbance at a
/// reference change relative to a strongly mismatched m.
#[test]
fn lemma2_optimal_m_beats_mismatched_m() {
    let run = |m: u32| {
        let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 20, 60.0, 17)
            .with_m(m)
            .with_l(1);
        cfg.ref_leaves_s = vec![30.0];
        let r = Network::build(&cfg).run();
        r.spread
            .max_in(SimTime::from_secs_f64(30.2), SimTime::from_secs_f64(40.0))
            .unwrap()
    };
    let optimal = run(4); // l + 3
    let mismatched = run(1); // |m - l - 3|/m = 3 ⇒ amplifies D⁻
    assert!(
        optimal <= mismatched * 1.5 + 5.0,
        "m=l+3 ({optimal:.1} µs) should not be substantially worse than m=1 ({mismatched:.1} µs)"
    );
}
