//! Scalability integration tests: the paper's core comparative claim at
//! reduced (test-budget) scale — SSTSP's accuracy is flat in N while TSF
//! degrades, because SSTSP removes per-BP contention entirely.

use simcore::SimTime;
use sstsp::sweep::run_configs;
use sstsp::{ProtocolKind, ScenarioConfig};

fn tails(kind: ProtocolKind, sizes: &[u32], duration_s: f64, seed: u64) -> Vec<f64> {
    let configs: Vec<ScenarioConfig> = sizes
        .iter()
        .map(|&n| ScenarioConfig::new(kind, n, duration_s, seed))
        .collect();
    run_configs(&configs)
        .iter()
        .map(|r| {
            r.spread
                .max_in(
                    SimTime::from_secs_f64(duration_s * 0.6),
                    SimTime::from_secs_f64(duration_s),
                )
                .unwrap()
        })
        .collect()
}

#[test]
fn sstsp_accuracy_is_flat_in_network_size() {
    let sizes = [10u32, 20, 40];
    let t = tails(ProtocolKind::Sstsp, &sizes, 30.0, 19);
    for (n, tail) in sizes.iter().zip(&t) {
        assert!(
            *tail < 25.0,
            "SSTSP at {n} stations: steady spread {tail:.1} µs"
        );
    }
    // Flat: largest size within 4× of smallest (noise), no growth trend.
    let min = t.iter().cloned().fold(f64::MAX, f64::min);
    let max = t.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max < min * 4.0 + 5.0,
        "SSTSP spread should not scale with N: {t:?}"
    );
}

#[test]
fn tsf_accuracy_degrades_with_network_size() {
    let sizes = [10u32, 40];
    let t = tails(ProtocolKind::Tsf, &sizes, 30.0, 19);
    assert!(
        t[1] > t[0],
        "TSF at 40 stations ({:.0} µs) should be worse than at 10 ({:.0} µs)",
        t[1],
        t[0]
    );
    assert!(
        t[1] > 25.0,
        "TSF at 40 stations should miss the 25 µs bound"
    );
}

#[test]
fn beacon_traffic_is_one_per_bp_for_sstsp() {
    // "The number of synchronization beacons emitted in SSTSP is the same
    // as in TSF" (Sec. 3.4) — at steady state exactly one per BP, and the
    // contention-free schedule means virtually no collisions.
    let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 30, 30.0, 23);
    let r = sstsp::Network::build(&cfg).run();
    let total = cfg.total_bps();
    assert!(
        r.tx_successes as f64 > 0.95 * total as f64,
        "expected ~1 beacon per BP, got {} of {}",
        r.tx_successes,
        total
    );
    assert!(
        r.tx_collisions < total / 20,
        "collisions should be rare after election: {}",
        r.tx_collisions
    );
}

#[test]
fn sweep_helpers_cover_seed_grid() {
    let base = ScenarioConfig::new(ProtocolKind::Sstsp, 8, 10.0, 0);
    let results = sstsp::sweep::run_seeds(&base, &[1, 2, 3, 4]);
    assert_eq!(results.len(), 4);
    let (mean_latency, n) = sstsp::sweep::mean_of(&results, |r| r.sync_latency_s);
    assert!(n >= 3, "most seeds synchronize");
    assert!(mean_latency.unwrap() > 0.0);
}
