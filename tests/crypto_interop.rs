//! Cross-crate crypto interoperability: beacons produced by the protocol
//! layer must verify with the standalone µTESLA primitives, survive the
//! wire format, and behave identically across chain-storage strategies.

use mac80211::frame::{BeaconBody, SecuredBeacon};
use sstsp_crypto::{
    sign_with_chain, FractalTraverser, HashChain, IntervalSchedule, MuTeslaSigner, MuTeslaVerifier,
};

const BP_US: f64 = 100_000.0;

#[test]
fn protocol_beacon_verifies_after_wire_roundtrip() {
    let sched = IntervalSchedule::new(0.0, BP_US, 1_000);
    let mut signer = MuTeslaSigner::new([42u8; 16], sched);
    let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

    for j in 1..=5usize {
        let body = BeaconBody {
            src: 7,
            seq: j as u32,
            timestamp_us: (j as f64 * BP_US) as u64,
            root: 7,
            hop: 0,
        };
        let auth = signer.sign(&body.auth_bytes(), j);
        // Serialize to the 92-byte wire image and decode on the receiver.
        let wire = SecuredBeacon { body, auth }.encode();
        assert_eq!(wire.len(), 92);
        let decoded = SecuredBeacon::decode(wire).expect("valid frame");
        assert_eq!(decoded.body, body);

        let out = verifier
            .observe(
                &decoded.body.auth_bytes(),
                &decoded.auth,
                sched.expected_emission_us(j),
            )
            .expect("authentic beacon accepted");
        if j >= 2 {
            let released = out.expect("previous beacon released");
            assert_eq!(released.interval as usize, j - 1);
        }
    }
}

#[test]
fn bitflip_anywhere_in_frame_is_caught() {
    let sched = IntervalSchedule::new(0.0, BP_US, 100);
    let mut signer = MuTeslaSigner::new([1u8; 16], sched);

    let body = BeaconBody {
        src: 3,
        seq: 1,
        timestamp_us: 100_000,
        root: 3,
        hop: 0,
    };
    let auth1 = signer.sign(&body.auth_bytes(), 1);

    // Tamper with the timestamp inside the wire image of beacon 1.
    let wire = SecuredBeacon { body, auth: auth1 }.encode();
    let mut tampered_bytes = wire.to_vec();
    tampered_bytes[24] ^= 0x01; // first byte of the timestamp field
    let tampered = SecuredBeacon::decode(bytes::Bytes::from(tampered_bytes)).unwrap();

    let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);
    verifier
        .observe(
            &tampered.body.auth_bytes(),
            &tampered.auth,
            sched.expected_emission_us(1),
        )
        .expect("buffered; tampering only detectable at key disclosure");

    // Beacon 2 discloses interval 1's key: the tampered beacon must fail.
    let body2 = BeaconBody {
        src: 3,
        seq: 2,
        timestamp_us: 200_000,
        root: 3,
        hop: 0,
    };
    let auth2 = signer.sign(&body2.auth_bytes(), 2);
    let err = verifier
        .observe(&body2.auth_bytes(), &auth2, sched.expected_emission_us(2))
        .unwrap_err();
    assert_eq!(err, sstsp_crypto::VerifyError::PreviousBeaconForged);
}

#[test]
fn fractal_traversal_signs_identically_to_store_all() {
    // A reference node could hold its chain either way; the beacons must be
    // byte-identical.
    let seed = [9u8; 16];
    let n = 256;
    let chain = HashChain::generate(seed, n);
    let mut trav = FractalTraverser::new(seed, n);

    // The traverser yields h^{n-1}, h^{n-2}, ... — i.e. the key of interval
    // 1, then interval 2, ... (key of interval j is h^{n-j}).
    let payload = b"beacon";
    for j in 1..=8usize {
        let key_from_traversal = trav.next_element().unwrap();
        assert_eq!(key_from_traversal, chain.interval_key(j));
        let auth = sign_with_chain(&chain, payload, j);
        assert_eq!(auth.interval, j as u32);
        // MAC with the traversal key matches the store-all MAC.
        let mut msg = payload.to_vec();
        msg.extend_from_slice(&(j as u32).to_le_bytes());
        let mac = sstsp_crypto::hmac::hmac_sha256_128(&key_from_traversal, &msg);
        assert_eq!(mac, auth.mac);
    }
}

#[test]
fn anchor_published_by_engine_node_verifies_its_beacons() {
    // Drive the protocol node directly and verify its emissions with a
    // fresh standalone verifier fed only the registry anchor — exactly what
    // a late-joining receiver does.
    use protocols::api::{AnchorRegistry, BeaconPayload, NodeCtx, ProtocolConfig, SyncProtocol};
    use rand_chacha::rand_core::SeedableRng;

    let config = ProtocolConfig::paper();
    let mut anchors = AnchorRegistry::new();
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(8);
    let mut node = protocols::SstspNode::founding();

    let mut ctx = NodeCtx {
        id: 4,
        local_us: 0.0,
        rng: &mut rng,
        anchors: &mut anchors,
        config: &config,
    };
    node.init(&mut ctx);
    let anchor = anchors.get(4).expect("anchor published at init");

    let sched = IntervalSchedule::new(0.0, config.bp_us, config.total_intervals);
    let mut verifier = MuTeslaVerifier::new(anchor, sched);

    for k in 3..=6u64 {
        let t = k as f64 * config.bp_us;
        let mut ctx = NodeCtx {
            id: 4,
            local_us: t,
            rng: &mut rng,
            anchors: &mut anchors,
            config: &config,
        };
        let BeaconPayload::Secured(body, auth) = node.make_beacon(&mut ctx) else {
            panic!("SSTSP emits secured beacons");
        };
        verifier
            .observe(&body.auth_bytes(), &auth, t)
            .expect("engine-node beacon verifies against registry anchor");
    }
}
