//! Security integration tests: the Sec. 4 adversary catalogue against the
//! full system, plus coordinated-adversary campaign drills on the bridged
//! mesh (is a coalition's damage confined to its collision domain?).

use simcore::SimTime;
use sstsp::scenario::{AttackerSpec, CampaignKind, CampaignSpec, TopologySpec};
use sstsp::{Network, ProtocolKind, ScenarioConfig};

fn attacked(kind: ProtocolKind, n: u32, seed: u64) -> sstsp::RunResult {
    let mut cfg = ScenarioConfig::new(kind, n, 60.0, seed);
    cfg.attacker = Some(AttackerSpec {
        start_s: 20.0,
        end_s: 40.0,
        error_us: 30.0,
    });
    Network::build(&cfg).run()
}

/// Fig. 3's mechanism: the fast-beacon attacker suppresses TSF beaconing
/// and the spread grows at drift rate.
#[test]
fn fast_beacon_attack_desynchronizes_tsf() {
    let r = attacked(ProtocolKind::Tsf, 30, 5);
    let before = r
        .spread
        .max_in(SimTime::from_secs(10), SimTime::from_secs(20))
        .unwrap();
    let during = r
        .spread
        .max_in(SimTime::from_secs(25), SimTime::from_secs(40))
        .unwrap();
    assert!(
        during > before * 2.0 && during > 500.0,
        "attack should blow TSF up: before {before:.0} µs, during {during:.0} µs"
    );
}

/// Fig. 4's mechanism: the same attacker against SSTSP captures the
/// reference but cannot desynchronize the honest stations.
#[test]
fn fast_beacon_attack_cannot_desynchronize_sstsp() {
    let r = attacked(ProtocolKind::Sstsp, 30, 5);
    assert!(
        r.attacker_became_reference,
        "internal attacker should capture the reference role"
    );
    let during = r
        .spread
        .max_in(SimTime::from_secs(25), SimTime::from_secs(40))
        .unwrap();
    assert!(
        during < 50.0,
        "honest spread during attack {during:.1} µs — network desynchronized"
    );
    // After the attack ends the honest network re-elects and carries on.
    let after = r
        .spread
        .max_in(SimTime::from_secs(50), SimTime::from_secs(60))
        .unwrap();
    assert!(after < 25.0, "post-attack spread {after:.1} µs");
}

/// The attacker's timestamps must clear the guard time to steer anyone; a
/// gross error converts the attack into a (detected) beacon-rejection DoS,
/// not a silent desynchronization of accepted time.
#[test]
fn guard_time_rejects_gross_internal_errors() {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 20, 60.0, 15);
    cfg.attacker = Some(AttackerSpec {
        start_s: 20.0,
        end_s: 40.0,
        error_us: 5_000.0, // way past δ
    });
    let r = Network::build(&cfg).run();
    assert!(
        r.guard_rejections > 50,
        "guard should reject the forged timestamps, got {}",
        r.guard_rejections
    );
    // The accepted clock state is never steered by 5 ms; honest stations
    // free-run at worst.
    assert!(
        r.peak_spread_us < 2_000.0,
        "accepted clocks should never absorb the 5 ms lie (peak {:.0} µs)",
        r.peak_spread_us
    );
    // After the DoS window the network recovers.
    let after = r
        .spread
        .max_in(SimTime::from_secs(50), SimTime::from_secs(60))
        .unwrap();
    assert!(after < 25.0, "post-attack spread {after:.1} µs");
}

/// Jamming (out of the paper's scope but part of the threat discussion):
/// all communication stops, clocks free-run, and the network recovers when
/// the jammer leaves.
#[test]
fn jamming_recovery() {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 20, 60.0, 25);
    cfg.jam_windows.push(sstsp::scenario::JamWindow {
        start_s: 20.0,
        end_s: 30.0,
    });
    let r = Network::build(&cfg).run();
    let during = r
        .spread
        .max_in(SimTime::from_secs(29), SimTime::from_secs(31))
        .unwrap();
    let after = r
        .spread
        .max_in(SimTime::from_secs(45), SimTime::from_secs(60))
        .unwrap();
    assert!(during > after, "jam must visibly degrade synchronization");
    assert!(after < 25.0, "network re-synchronizes after the jam");
}

/// Determinism under attack: the hostile scenarios are exactly as
/// reproducible as the calm ones.
#[test]
fn attacked_runs_are_deterministic() {
    let a = attacked(ProtocolKind::Sstsp, 15, 33);
    let b = attacked(ProtocolKind::Sstsp, 15, 33);
    assert_eq!(a.spread.values(), b.spread.values());
    assert_eq!(a.guard_rejections, b.guard_rejections);
    assert_eq!(a.mutesla_rejections, b.mutesla_rejections);
}

/// A bridged-mesh scenario (2 domains of 3×2 stations + 1 gateway) with a
/// fast-beacon + replay coalition of `attackers` stations. Campaign
/// members are the top station ids, so small coalitions sit entirely
/// inside the far island (one collision domain) while large ones span
/// both islands; gateways always stay honest.
fn bridged_coalition(attackers: u32) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 13, 25.0, 7);
    cfg.topology = Some(TopologySpec::Bridged {
        domains: 2,
        cols: 3,
        rows: 2,
    });
    cfg.campaign = Some(CampaignSpec {
        kind: CampaignKind::Coalition {
            error_us: 800.0,
            delay_bps: 2,
        },
        attackers,
        start_s: 10.0,
        end_s: 20.0,
    });
    cfg
}

/// A coalition confined to one collision domain: its beacon suppression
/// and poisoned timestamps reach only its own island. The other domain's
/// election is untouched, no reference capture happens, and the whole
/// mesh re-converges after the campaign.
#[test]
fn confined_coalition_damage_stays_in_its_domain() {
    let r = Network::build(&bridged_coalition(3)).run();
    assert!(
        r.guard_rejections > 50,
        "guard should reject the coalition's poisoned timestamps \
         (got {})",
        r.guard_rejections
    );
    assert!(
        !r.attacker_became_reference,
        "a coalition confined to the far island must not capture any \
         reference seat (the sitting per-domain references beacon earlier)"
    );
    let domains = r.domain_report.as_deref().expect("bridged run");
    for d in domains {
        let spread = d.end_spread_us.expect("both domains keep honest stations");
        assert!(
            spread < 10.0,
            "domain {} failed to re-converge: end spread {spread:.1} µs",
            d.domain
        );
    }
    let tail = r
        .spread
        .max_in(SimTime::from_secs(22), SimTime::from_secs(25))
        .unwrap();
    assert!(tail < 25.0, "post-campaign spread {tail:.1} µs");
}

/// A coalition large enough to span both islands (8 of the 12 island
/// stations — the far domain entirely compromised plus a foothold in the
/// near one). It captures reference seats and forces re-elections, but
/// the honest remnant still re-converges once the campaign ends — and a
/// fully compromised domain visibly drops out of the honest spread
/// report.
#[test]
fn gateway_spanning_coalition_is_survived() {
    let confined = Network::build(&bridged_coalition(3)).run();
    let r = Network::build(&bridged_coalition(8)).run();
    assert!(
        r.attacker_became_reference,
        "a coalition holding a whole domain captures its reference seat"
    );
    assert!(
        r.reference_changes > confined.reference_changes,
        "spanning coalition should force re-elections \
         (spanning {} vs confined {})",
        r.reference_changes,
        confined.reference_changes
    );
    let domains = r.domain_report.as_deref().expect("bridged run");
    assert!(
        domains.iter().any(|d| d.end_spread_us.is_none()),
        "the fully compromised domain has no honest stations left to \
         report a spread: {domains:?}"
    );
    // The honest remnant (near island + gateway) re-converges.
    let tail = r
        .spread
        .max_in(SimTime::from_secs(22), SimTime::from_secs(25))
        .unwrap();
    assert!(tail < 25.0, "post-campaign honest spread {tail:.1} µs");
}

/// Campaign drills are exactly reproducible: byte-identical honest-spread
/// series on a re-run (check.sh repeats this suite at RAYON_NUM_THREADS =
/// 1, 2 and 8 for pool-size independence).
#[test]
fn campaign_drills_are_deterministic() {
    for attackers in [3, 8] {
        let cfg = bridged_coalition(attackers);
        let a = Network::build(&cfg).run();
        let b = Network::build(&cfg).run();
        assert_eq!(a.spread.values(), b.spread.values());
        assert_eq!(a.guard_rejections, b.guard_rejections);
        assert_eq!(a.reference_changes, b.reference_changes);
    }
}

/// The recovery extension (the paper's future work): under a
/// guard-violating insider, nodes accumulate rejections and raise alerts.
#[test]
fn recovery_extension_raises_alerts_under_attack() {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 15, 40.0, 45);
    cfg.protocol_config = cfg
        .protocol_config
        .with_recovery(protocols::api::RecoveryPolicy {
            rejection_threshold: 10,
            window_bps: 50,
            restart: false,
        });
    cfg.attacker = Some(AttackerSpec {
        start_s: 15.0,
        end_s: 30.0,
        error_us: 5_000.0, // rejected by the guard → detection input
    });
    let r = Network::build(&cfg).run();
    assert!(r.alerts > 0, "no alerts raised under detectable attack");

    // Calm baseline: zero alerts.
    let calm = ScenarioConfig::new(ProtocolKind::Sstsp, 15, 40.0, 45);
    let mut calm = calm;
    calm.protocol_config = calm
        .protocol_config
        .with_recovery(protocols::api::RecoveryPolicy::default());
    let rc = Network::build(&calm).run();
    assert_eq!(rc.alerts, 0, "false alerts in a calm network");
}
