//! Telemetry reconciliation: the metrics registry, the structured trace,
//! and the engine's own `RunResult` are three independent views of one run
//! — they must agree exactly.
//!
//! Counter sites live inline next to the `RunResult` accumulation they
//! mirror, so these identities are a genuine cross-check of the
//! instrumentation, not a tautology. The fault plan deliberately avoids
//! crash/kill-reference events: a rebooted station resets its diagnostic
//! counters, which would legitimately break per-station reconciliation.

use sstsp_faults::plan::FuzzCase;
use sstsp_faults::run_case_traced;
use sstsp_telemetry::{recording, snapshot, trace, RxOutcome, TraceEvent};

/// Loss + corruption + disclosure loss, no churn-like faults.
const SPEC: &str = "n=10 dur=20 seed=7 m=4 delta=300 plan=3 \
                    burst@30..80:p=0.5 corrupt@20..120:field=ts,p=0.3 \
                    corrupt@40..140:field=mac,p=0.2 discloss@60..130:p=0.4";

#[test]
fn counters_trace_and_run_result_reconcile() {
    let case: FuzzCase = SPEC.parse().expect("valid spec");
    let _guard = recording();
    let outcome = run_case_traced(&case);
    let snap = snapshot();
    let r = &outcome.result;

    // Every receive attempt is accounted for: delivered, lost on the
    // channel, or dropped by the fault hook.
    assert_eq!(
        snap.counter("engine.beacon.rx_attempt"),
        snap.counter("engine.beacon.rx_delivered")
            + snap.counter("engine.beacon.rx_lost")
            + snap.counter("engine.beacon.rx_hook_dropped"),
        "rx attempts must partition into delivered + lost + hook-dropped"
    );
    assert!(
        snap.counter("engine.beacon.rx_hook_dropped") > 0,
        "disclosure-loss plan produced no hook drops"
    );

    // Beacon-window counters mirror the RunResult tallies.
    assert_eq!(snap.counter("engine.window.success"), r.tx_successes);
    assert_eq!(snap.counter("engine.window.collision"), r.tx_collisions);
    assert_eq!(snap.counter("engine.window.silent"), r.silent_windows);
    assert_eq!(snap.counter("engine.window.jammed"), r.jammed_windows);
    assert_eq!(snap.counter("engine.beacon.tx"), r.tx_successes);

    // Protocol-layer counters mirror the aggregated station stats.
    assert_eq!(snap.counter("sstsp.reject.guard"), r.guard_rejections);
    assert_eq!(snap.counter("sstsp.reject.mutesla"), r.mutesla_rejections);
    assert_eq!(snap.counter("sstsp.retarget"), r.retargets);
    assert!(
        r.mutesla_rejections > 0,
        "corruption plan produced no µTESLA rejections"
    );

    // The trace is a third independent view: per-delivery verdicts must sum
    // to the same totals.
    let count_rx = |want: fn(&RxOutcome) -> bool| {
        outcome
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::BeaconRx { outcome, .. } if want(outcome)))
            .count() as u64
    };
    assert_eq!(
        count_rx(|o| matches!(o, RxOutcome::GuardReject)),
        r.guard_rejections
    );
    assert_eq!(
        count_rx(|o| matches!(o, RxOutcome::MuteslaReject)),
        r.mutesla_rejections
    );
    let tx_events = outcome
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::BeaconTx { .. }))
        .count() as u64;
    assert_eq!(tx_events, r.tx_successes);
    let hook_drops = outcome
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::HookDrop { .. }))
        .count() as u64;
    assert_eq!(hook_drops, snap.counter("engine.beacon.rx_hook_dropped"));

    // Simulator-level telemetry is present and sane.
    assert!(snap.gauge("engine.queue.peak_pending").unwrap_or(0) >= 1);
    assert!(snap.counter("engine.rng.chan_draws") > 0);
    let spread = &snap.dists["engine.spread_us"];
    assert_eq!(spread.count(), case.scenario().total_bps());

    // JSONL export is well-formed: one object per line, framed by
    // run_start / run_end.
    let jsonl = trace::to_jsonl(&outcome.events).expect("trace carries only finite floats");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), outcome.events.len());
    assert!(lines.first().unwrap().starts_with("{\"ev\":\"run_start\""));
    assert!(lines.last().unwrap().starts_with("{\"ev\":\"run_end\""));
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
    }
    // And the JSONL parses back to the exact event stream (the reader is
    // the writer's inverse).
    assert_eq!(
        sstsp_telemetry::reader::parse_events(&jsonl).expect("own output parses"),
        outcome.events
    );

    // A correct implementation stays violation-free under this plan, and
    // the spec round-trips for replay.
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    assert_eq!(case.to_string().parse::<FuzzCase>().unwrap(), case);
}
