//! Differential security regression suite — the headline pin of the
//! coordinated-adversary campaign library.
//!
//! For every campaign kind, the *same* hostile scenario (same seed, same
//! topology, same campaign window) runs twice: once under SSTSP and once
//! under plain, unauthenticated TSF. The goldens pinned here are the
//! paper's security claim in executable form:
//!
//! * Colluding adversaries can capture the reference *role* under SSTSP
//!   but can never steer accepted time past the guard bound (δ = 300 µs);
//!   at worst they mount a detected beacon-rejection DoS under which
//!   honest clocks free-run. After every campaign the network re-converges
//!   to the paper's ≤ 25 µs synchronization criterion.
//! * TSF, facing the identical adversaries on the identical seed, absorbs
//!   the forged timestamps — driven several multiples past the guard
//!   bound — and never returns to the synchronization criterion.
//!
//! Campaign runs always take the engine's plain event loop (members form
//! intents from live protocol state the SoA fast path cannot represent),
//! so each drill also pins `engine.path.slow == 1` / `engine.path.fast
//! == 0` plus the `campaign.tx` counter proving the adversaries actually
//! transmitted. Determinism of the hostile runs is pinned byte-exactly;
//! `scripts/check.sh` re-runs this suite at `RAYON_NUM_THREADS` = 1, 2
//! and 8.

use simcore::SimTime;
use sstsp::scenario::{CampaignKind, CampaignSpec, TopologySpec};
use sstsp::{Network, ProtocolKind, RunResult, ScenarioConfig};
use sstsp_telemetry as telemetry;

/// δ_fine from `ProtocolConfig::paper()`: the guard-time bound on how far
/// any accepted timestamp may sit from the receiver's own clock.
const GUARD_BOUND_US: f64 = 300.0;

/// The paper's "network synchronized" criterion (≤ 25 µs spread).
const SYNC_CRITERION_US: f64 = 25.0;

/// The hostile scenario for one campaign: single-hop IBSS (n = 12) or the
/// 2-domain bridged mesh (2·3·2 islands + 1 gateway = 13 stations, where
/// SSTSP runs per-domain reference election).
fn hostile(kind: ProtocolKind, campaign: CampaignSpec, bridged: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(kind, if bridged { 13 } else { 12 }, 25.0, 7);
    if bridged {
        cfg.topology = Some(TopologySpec::Bridged {
            domains: 2,
            cols: 3,
            rows: 2,
        });
    }
    cfg.campaign = Some(campaign);
    cfg
}

/// Run one hostile scenario under a fresh telemetry session and verify the
/// engine-path and campaign counters every campaign run must produce.
fn run_hostile(cfg: &ScenarioConfig, label: &str) -> RunResult {
    let _session = telemetry::recording();
    let r = Network::build(cfg).run();
    let snap = telemetry::snapshot();
    assert_eq!(
        snap.counter("engine.path.slow"),
        1,
        "{label}: campaign runs must take the plain event loop"
    );
    assert_eq!(
        snap.counter("engine.path.fast"),
        0,
        "{label}: fast path must be gated off under a campaign"
    );
    assert!(
        snap.counter("campaign.tx") > 0,
        "{label}: campaign members never transmitted"
    );
    r
}

/// Maximum network spread over `[from, to]` seconds.
fn spread_max(r: &RunResult, from: u64, to: u64) -> f64 {
    r.spread
        .max_in(SimTime::from_secs(from), SimTime::from_secs(to))
        .expect("window holds samples")
}

/// The recovery differential shared by every campaign kind: after the
/// campaign window SSTSP re-converges to the paper's criterion while TSF,
/// hit by the identical adversaries, never does.
fn assert_recovery_differential(name: &str, sstsp: &RunResult, tsf: &RunResult, tail_from: u64) {
    let sstsp_tail = spread_max(sstsp, tail_from, 25);
    assert!(
        sstsp_tail < SYNC_CRITERION_US,
        "{name}: SSTSP failed to re-converge after the campaign \
         ({sstsp_tail:.1} µs > {SYNC_CRITERION_US} µs)"
    );
    let tsf_tail = spread_max(tsf, tail_from, 25);
    assert!(
        tsf_tail > SYNC_CRITERION_US && tsf_tail > 4.0 * sstsp_tail,
        "{name}: TSF recovered too well after the campaign \
         (TSF {tsf_tail:.1} µs vs SSTSP {sstsp_tail:.1} µs)"
    );
}

/// A three-station fast-beacon + replay coalition on the single-hop IBSS:
/// the leader floods poisoned timestamps (800 µs past δ), amplifiers
/// replay them two BPs later. SSTSP lets the coalition win the reference
/// *role* while the guard rejects its influence; TSF absorbs the lies.
#[test]
fn coalition_differential_sstsp_holds_tsf_diverges() {
    let campaign = CampaignSpec {
        kind: CampaignKind::Coalition {
            error_us: 800.0,
            delay_bps: 2,
        },
        attackers: 3,
        start_s: 10.0,
        end_s: 20.0,
    };
    let sstsp = run_hostile(
        &hostile(ProtocolKind::Sstsp, campaign, false),
        "coalition/sstsp",
    );
    let tsf = run_hostile(
        &hostile(ProtocolKind::Tsf, campaign, false),
        "coalition/tsf",
    );

    // Inside the campaign window SSTSP's spread never escapes the guard
    // bound, while TSF is driven several multiples past it.
    let sstsp_window = spread_max(&sstsp, 10, 20);
    assert!(
        sstsp_window < GUARD_BOUND_US,
        "coalition: SSTSP spread {sstsp_window:.1} µs during the campaign \
         escaped the guard bound ({GUARD_BOUND_US} µs)"
    );
    let tsf_window = spread_max(&tsf, 10, 20);
    assert!(
        tsf_window > 3.0 * GUARD_BOUND_US,
        "coalition: TSF was expected to diverge ≥ 3× past the guard bound, \
         got {tsf_window:.1} µs — differential collapsed"
    );
    assert_recovery_differential("coalition", &sstsp, &tsf, 21);

    // The coalition's fast beacons win the reference role — exactly the
    // paper's threat model: role capture is allowed, time capture is not.
    assert!(
        sstsp.attacker_became_reference,
        "coalition leader should capture the reference role under SSTSP"
    );
    assert!(
        sstsp.guard_rejections > 100,
        "SSTSP's guard should reject the coalition's poisoned timestamps \
         (got {} rejections)",
        sstsp.guard_rejections
    );
}

/// A Sybil candidacy flood against the bridged mesh's per-domain
/// elections: two flooders in the far island contest every election from
/// t = 0 with deterministically earlier candidacy slots and grossly wrong
/// clocks (1.5 ms). The flood *wins its domain's election* — role capture
/// — but the guard converts its reign into a detected DoS: honest
/// stations reject every poisoned beacon and free-run until the campaign
/// ends, then re-converge. TSF on the same mesh absorbs the forgeries and
/// never synchronizes.
#[test]
fn sybil_flood_differential_on_bridged_mesh() {
    let campaign = CampaignSpec {
        kind: CampaignKind::SybilFlood { error_us: 1500.0 },
        attackers: 2,
        start_s: 0.0,
        end_s: 15.0,
    };
    let cfg = hostile(ProtocolKind::Sstsp, campaign, true);
    let members = cfg.campaign_member_ids();
    let sstsp = run_hostile(&cfg, "sybil/sstsp");
    let tsf = run_hostile(&hostile(ProtocolKind::Tsf, campaign, true), "sybil/tsf");

    // Role capture: a flooder holds the far domain's reference seat.
    let domains = sstsp
        .domain_report
        .as_deref()
        .expect("bridged run reports domains");
    let captured = domains
        .iter()
        .filter_map(|d| d.final_reference)
        .filter(|r| members.contains(r))
        .count();
    assert!(
        captured > 0,
        "sybil: flood should win its domain's election (members {members:?}, \
         report {domains:?})"
    );

    // ... but not time capture: the guard rejects the flooder's 1.5 ms
    // timestamps, and the honest majority at worst free-runs — it never
    // absorbs the forged offset on top of its own drift.
    assert!(
        sstsp.guard_rejections > 0,
        "sybil: guard should reject the flooder's poisoned beacons"
    );
    let sstsp_window = spread_max(&sstsp, 2, 14);
    let tsf_window = spread_max(&tsf, 2, 14);
    assert!(
        sstsp_window < tsf_window,
        "sybil: SSTSP under detected DoS ({sstsp_window:.1} µs) should stay \
         below TSF absorbing the forgeries ({tsf_window:.1} µs)"
    );
    assert_recovery_differential("sybil", &sstsp, &tsf, 20);
}

/// A reactive jammer that fires only in the current reference's beacon
/// slot, tracking re-elections across the bridged mesh. SSTSP degrades
/// (the reference's beacons collide) but stays inside the guard bound and
/// recovers; TSF's islands free-run apart.
#[test]
fn reference_slot_jammer_differential_on_bridged_mesh() {
    let campaign = CampaignSpec {
        kind: CampaignKind::RefSlotJam,
        attackers: 1,
        start_s: 10.0,
        end_s: 20.0,
    };
    let sstsp = run_hostile(
        &hostile(ProtocolKind::Sstsp, campaign, true),
        "jamref/sstsp",
    );
    let tsf = run_hostile(&hostile(ProtocolKind::Tsf, campaign, true), "jamref/tsf");

    let sstsp_window = spread_max(&sstsp, 10, 20);
    assert!(
        sstsp_window < GUARD_BOUND_US,
        "jamref: SSTSP spread {sstsp_window:.1} µs during the jam escaped \
         the guard bound ({GUARD_BOUND_US} µs)"
    );
    let tsf_window = spread_max(&tsf, 10, 20);
    assert!(
        tsf_window > 3.0 * GUARD_BOUND_US,
        "jamref: TSF was expected to diverge ≥ 3× past the guard bound, \
         got {tsf_window:.1} µs"
    );
    assert_recovery_differential("jamref", &sstsp, &tsf, 21);

    // The jammer manufactures collisions in the reference slot — visible
    // as a collision count far above the calm bridged baseline.
    let mut calm = hostile(ProtocolKind::Sstsp, campaign, true);
    calm.campaign = None;
    let baseline = Network::build(&calm).run();
    assert!(
        sstsp.tx_collisions > baseline.tx_collisions + 50,
        "jammer should force reference-slot collisions \
         (jammed {} vs calm {})",
        sstsp.tx_collisions,
        baseline.tx_collisions
    );
}

/// Hostile runs are exactly as reproducible as calm ones: byte-identical
/// spread series and identical counters on a re-run. (Thread-count
/// independence of the same configs is pinned in
/// `crates/core/tests/thread_determinism.rs`; check.sh re-runs this suite
/// at RAYON_NUM_THREADS = 1, 2 and 8.)
#[test]
fn hostile_differential_runs_are_deterministic() {
    let campaign = CampaignSpec {
        kind: CampaignKind::Coalition {
            error_us: 800.0,
            delay_bps: 2,
        },
        attackers: 3,
        start_s: 10.0,
        end_s: 20.0,
    };
    for kind in [ProtocolKind::Sstsp, ProtocolKind::Tsf] {
        let cfg = hostile(kind, campaign, false);
        let a = Network::build(&cfg).run();
        let b = Network::build(&cfg).run();
        let bits =
            |r: &RunResult| -> Vec<u64> { r.spread.values().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&a), bits(&b), "{kind:?}: spread series diverged");
        assert_eq!(a.guard_rejections, b.guard_rejections);
        assert_eq!(a.tx_collisions, b.tx_collisions);
        assert_eq!(a.reference_changes, b.reference_changes);
        assert_eq!(a.attacker_became_reference, b.attacker_became_reference);
    }
}
