//! Protocol shootout: TSF, ATSP, TATSP, SATSF and SSTSP across network
//! sizes — the scalability comparison the paper's related-work section
//! frames (Sec. 2), run as one rayon-parallel sweep.
//!
//! ```text
//! cargo run --release --example protocol_shootout            # up to 500 stations
//! cargo run --release --example protocol_shootout -- quick   # up to 100
//! ```

use rayon::prelude::*;
use sstsp::report::render_table;
use sstsp::{Network, ProtocolKind, RunResult, ScenarioConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let sizes: &[u32] = if quick {
        &[25, 50, 100]
    } else {
        &[50, 100, 200, 500]
    };
    let duration_s = if quick { 60.0 } else { 120.0 };
    let protocols = [
        ProtocolKind::Tsf,
        ProtocolKind::Atsp,
        ProtocolKind::Tatsp,
        ProtocolKind::Satsf,
        ProtocolKind::Asp,
        ProtocolKind::Rk,
        ProtocolKind::Sstsp,
    ];

    println!(
        "Scalability shootout: {} protocols × {:?} stations, {duration_s} s each\n",
        protocols.len(),
        sizes
    );

    // One deterministic run per (protocol, size); rayon over the grid.
    let grid: Vec<(ProtocolKind, u32)> = protocols
        .iter()
        .flat_map(|&p| sizes.iter().map(move |&n| (p, n)))
        .collect();
    let results: Vec<RunResult> = grid
        .par_iter()
        .map(|&(p, n)| Network::build(&ScenarioConfig::new(p, n, duration_s, 77)).run())
        .collect();

    // Steady-state spread over the final third of each run.
    let tail_from = simcore::SimTime::from_secs_f64(duration_s * 2.0 / 3.0);
    let tail_to = simcore::SimTime::from_secs_f64(duration_s);
    let mut rows = Vec::new();
    for (&(p, n), r) in grid.iter().zip(&results) {
        rows.push(vec![
            p.name().to_string(),
            n.to_string(),
            r.sync_latency_s
                .map_or("never".into(), |l| format!("{l:.1}s")),
            format!(
                "{:.1}",
                r.spread.max_in(tail_from, tail_to).unwrap_or(f64::NAN)
            ),
            format!("{:.0}", r.peak_spread_us),
            format!(
                "{:.1}%",
                100.0 * r.tx_collisions as f64 / (r.tx_successes + r.tx_collisions).max(1) as f64
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "protocol",
                "stations",
                "sync latency",
                "steady spread µs",
                "peak spread µs",
                "collision rate"
            ],
            &rows
        )
    );

    // Who stays under the 25 µs industrial bound at the largest size?
    let biggest = *sizes.last().unwrap();
    println!("\nAt {biggest} stations (steady-state ≤ 25 µs):");
    for (&(p, n), r) in grid.iter().zip(&results) {
        if n == biggest {
            let tail = r.spread.max_in(tail_from, tail_to).unwrap_or(f64::NAN);
            println!(
                "  {:<6} {}",
                p.name(),
                if tail <= 25.0 {
                    "synchronized".to_string()
                } else {
                    format!("NOT synchronized ({tail:.0} µs)")
                }
            );
        }
    }
}
