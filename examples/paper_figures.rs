//! Regenerate every table and figure of the paper's evaluation (Sec. 5).
//!
//! ```text
//! cargo run --release --example paper_figures            # everything, paper scale
//! cargo run --release --example paper_figures -- fig2    # one figure
//! cargo run --release --example paper_figures -- all quick   # reduced scale
//! ```
//!
//! Paper-scale SSTSP runs simulate 500 stations for 1000 s with full µTESLA
//! authentication on every beacon — expect ~15 s of wall time per SSTSP
//! figure on a laptop.

use sstsp::experiments::{ablation, fig1, fig2, fig3, fig4, multihop, overhead, table1, Fidelity};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let fid = if args.iter().any(|a| a == "quick") {
        Fidelity::Quick
    } else {
        Fidelity::Paper
    };
    let seed = 2006; // ICPP 2006
    println!(
        "SSTSP reproduction — {} at {:?} fidelity (seed {seed})\n",
        which, fid
    );

    let run_fig1 = || println!("{}", fig1::run(fid, seed).render());
    let run_fig2 = || {
        let f = fig2::run(fid, seed);
        println!("{}", f.render());
        println!(
            "  paper claim (< 10 µs after stabilization): {}\n",
            if f.shape_holds() { "HOLDS" } else { "DEVIATES" }
        );
    };
    let run_fig3 = || {
        let f = fig3::run(fid, seed);
        println!("{}", f.render());
        println!(
            "  paper claim (attack desynchronizes TSF by orders of magnitude): {}\n",
            if f.shape_holds() { "HOLDS" } else { "DEVIATES" }
        );
    };
    let run_fig4 = || {
        let f = fig4::run(fid, seed);
        println!("{}", f.render());
        println!(
            "  paper claim (attacker cannot desynchronize SSTSP): {}\n",
            if f.shape_holds() { "HOLDS" } else { "DEVIATES" }
        );
    };
    let run_table1 = || {
        let t = table1::run(fid, seed);
        println!("{}", t.render());
        println!(
            "  paper shape (latency grows with m, error ≤ 25 µs): {}\n",
            if t.shape_holds() { "HOLDS" } else { "DEVIATES" }
        );
    };
    let run_ablation = || {
        println!("{}", ablation::ref_change(fid, seed).render());
        println!();
        println!("{}", ablation::guard_sweep(fid, seed).render());
        println!();
    };
    let run_multihop = || {
        let m = multihop::run(fid, seed);
        println!("{}", m.render());
        println!(
            "  extension shape (line tight, grid merged): {}\n",
            if m.shape_holds() { "HOLDS" } else { "DEVIATES" }
        );
    };
    let run_overhead = || {
        let o = overhead::run();
        println!("{}", o.render());
        println!(
            "  paper budget (56→92 B, log2(n) chain costs): {}\n",
            if o.shape_holds() { "HOLDS" } else { "DEVIATES" }
        );
    };

    match which {
        "fig1" => run_fig1(),
        "fig2" => run_fig2(),
        "fig3" => run_fig3(),
        "fig4" => run_fig4(),
        "table1" => run_table1(),
        "ablation" => run_ablation(),
        "multihop" => run_multihop(),
        "overhead" => run_overhead(),
        "all" => {
            run_fig1();
            run_fig2();
            run_fig3();
            run_fig4();
            run_table1();
            run_ablation();
            run_multihop();
            run_overhead();
        }
        other => {
            eprintln!(
                "unknown target '{other}'; use fig1|fig2|fig3|fig4|table1|ablation|multihop|overhead|all [quick]"
            );
            std::process::exit(2);
        }
    }
}
