//! Domain scenario: a TDMA-slotted sensor swarm riding on SSTSP.
//!
//! The paper motivates time synchronization with power management and QoS:
//! stations sleep between scheduled activity and must wake in the right
//! slot. This example runs an 80-station SSTSP swarm, derives a 1 ms TDMA
//! schedule from the synchronized clocks, and measures how many TDMA slot
//! boundaries each station would miss given its residual clock error —
//! first in a calm network, then with a mid-run jamming burst.
//!
//! ```text
//! cargo run --release --example secure_sensor_swarm
//! ```

use sstsp::scenario::JamWindow;
use sstsp::{Network, ProtocolKind, ScenarioConfig};

/// TDMA slot width the swarm's MAC schedule uses.
const TDMA_SLOT_US: f64 = 1_000.0;

/// A station keeps its radio open this long around each slot boundary; a
/// clock error beyond the guard margin means a missed slot.
const WAKE_MARGIN_US: f64 = 100.0;

fn slot_miss_rate(spread: &simcore::TimeSeries, from_s: f64, to_s: f64) -> f64 {
    // A sample with spread above the wake margin means the worst-off pair
    // of stations would miss a common slot boundary in that beacon period.
    let mut total = 0u64;
    let mut missed = 0u64;
    for (t, v) in spread.iter() {
        let ts = t.as_secs_f64();
        if ts >= from_s && ts < to_s {
            total += 1;
            if v > WAKE_MARGIN_US {
                missed += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        missed as f64 / total as f64
    }
}

fn main() {
    println!("== Secure sensor swarm: TDMA over SSTSP ==\n");
    println!(
        "TDMA slots of {} µs; stations wake ±{} µs around boundaries.\n",
        TDMA_SLOT_US, WAKE_MARGIN_US
    );

    // Calm network.
    let calm = ScenarioConfig::new(ProtocolKind::Sstsp, 80, 120.0, 7);
    let calm_run = Network::build(&calm).run();
    let calm_miss = slot_miss_rate(&calm_run.spread, 10.0, 120.0);
    println!(
        "calm swarm:      sync latency {:?} s",
        calm_run.sync_latency_s
    );
    println!(
        "                 steady spread ≤ {:.1} µs, slot-miss rate {:.2} %",
        calm_run
            .spread
            .max_in(
                simcore::SimTime::from_secs(60),
                simcore::SimTime::from_secs(120)
            )
            .unwrap_or(f64::NAN),
        calm_miss * 100.0
    );

    // Same swarm with a 10 s jamming burst at t = 50 s.
    let mut jammed = ScenarioConfig::new(ProtocolKind::Sstsp, 80, 120.0, 7);
    jammed.jam_windows.push(JamWindow {
        start_s: 50.0,
        end_s: 60.0,
    });
    let jam_run = Network::build(&jammed).run();
    let during = slot_miss_rate(&jam_run.spread, 50.0, 60.0);
    let after = slot_miss_rate(&jam_run.spread, 70.0, 120.0);
    println!(
        "\njammed 50–60 s:  {} windows destroyed",
        jam_run.jammed_windows
    );
    println!(
        "                 slot-miss rate during jam {:.2} %, after recovery {:.2} %",
        during * 100.0,
        after * 100.0
    );
    println!(
        "                 peak spread during jam {:.1} µs (clocks free-run, no beacons)",
        jam_run
            .spread
            .max_in(
                simcore::SimTime::from_secs(50),
                simcore::SimTime::from_secs(62)
            )
            .unwrap_or(f64::NAN)
    );

    println!(
        "\n{}",
        sstsp::report::render_series_chart(&jam_run.spread, 72, 10)
    );
    println!(
        "The swarm rides out the jam: beacons resume, the reference election\n\
         recovers, and the TDMA schedule tightens back under the wake margin."
    );
}
