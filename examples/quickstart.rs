//! Quickstart: build a small SSTSP network, run it, print the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sstsp::{Network, ProtocolKind, ScenarioConfig};

fn main() {
    // 30 stations, 60 simulated seconds, deterministic seed.
    let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 30, 60.0, 42);
    println!(
        "Simulating {} stations running {} for {} s (seed {})...",
        cfg.n_nodes,
        cfg.protocol.name(),
        cfg.duration_s,
        cfg.seed
    );
    let result = Network::build(&cfg).run();

    println!(
        "{}",
        sstsp::report::render_series_chart(&result.spread, 72, 12)
    );
    match result.sync_latency_s {
        Some(l) => println!("synchronized after {l:.1} s (max diff ≤ 25 µs sustained)"),
        None => println!("network never synchronized!"),
    }
    if let Some(e) = result.steady_error_us {
        println!("steady-state synchronization error: {e:.1} µs");
    }
    println!(
        "beacons: {} successful, {} collided, {} silent windows",
        result.tx_successes, result.tx_collisions, result.silent_windows
    );
    println!(
        "reference changes: {}, final reference: {:?}",
        result.reference_changes, result.final_reference
    );
}
