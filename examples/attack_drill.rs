//! Attack drill: the same internal fast-beacon adversary against TSF and
//! SSTSP, plus protocol-level demonstrations of the replay and external
//! forgery defences.
//!
//! ```text
//! cargo run --release --example attack_drill
//! ```

use protocols::api::{AnchorRegistry, NodeCtx, ProtocolConfig, ReceivedBeacon, SyncProtocol};
use protocols::SstspNode;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use sstsp::scenario::AttackerSpec;
use sstsp::{Network, ProtocolKind, ScenarioConfig};

fn engine_level_drill() {
    println!("== Engine-level drill: fast-beacon attacker 40–80 s ==\n");
    for kind in [ProtocolKind::Tsf, ProtocolKind::Sstsp] {
        let mut cfg = ScenarioConfig::new(kind, 60, 120.0, 99);
        cfg.attacker = Some(AttackerSpec {
            start_s: 40.0,
            end_s: 80.0,
            error_us: 30.0,
        });
        let r = Network::build(&cfg).run();
        let before = r
            .spread
            .max_in(
                simcore::SimTime::from_secs(20),
                simcore::SimTime::from_secs(40),
            )
            .unwrap_or(f64::NAN);
        let during = r
            .spread
            .max_in(
                simcore::SimTime::from_secs(45),
                simcore::SimTime::from_secs(80),
            )
            .unwrap_or(f64::NAN);
        println!("{}", sstsp::report::render_series_chart(&r.spread, 72, 9));
        println!(
            "  {:>5}: spread before attack {:>9.1} µs | during attack {:>9.1} µs | attacker ref: {}\n",
            r.protocol, before, during, r.attacker_became_reference
        );
    }
    println!(
        "TSF: the attacker wins every contention; its slow timestamps are never\n\
         adopted, so timing information stops flowing and clocks drift apart.\n\
         SSTSP: the attacker can capture the reference role, but the guard time\n\
         caps its lies — the honest stations stay mutually synchronized.\n"
    );
}

/// Protocol-level demo: a replayed reference beacon is rejected.
fn replay_drill() {
    println!("== Protocol-level drill: replay rejection ==\n");
    let config = ProtocolConfig::paper().with_contend_prob(1.0);
    let mut anchors = AnchorRegistry::new();
    let mut ref_rng = ChaCha12Rng::seed_from_u64(1);
    let mut victim_rng = ChaCha12Rng::seed_from_u64(2);

    let mut reference = SstspNode::founding();
    let mut victim = SstspNode::founding();

    // Reference wins the initial election and beacons each BP; the victim
    // follows. The adversary records beacon 5 and replays it at BP 9.
    let bp = config.bp_us;
    let mut recorded = None;
    for k in 1..=8u64 {
        let t = k as f64 * bp;
        let mut ctx = NodeCtx {
            id: 0,
            local_us: t,
            rng: &mut ref_rng,
            anchors: &mut anchors,
            config: &config,
        };
        if k == 1 {
            reference.init(&mut ctx);
            // Two empty BPs make the founding node election-eligible.
            reference.on_bp_end(&mut ctx);
            reference.on_bp_end(&mut ctx);
        }
        let beacon = reference.make_beacon(&mut ctx);
        if k == 5 {
            recorded = Some(beacon);
        }
        let mut vctx = NodeCtx {
            id: 1,
            local_us: t + config.t_p_us,
            rng: &mut victim_rng,
            anchors: &mut anchors,
            config: &config,
        };
        victim.on_beacon(
            &mut vctx,
            ReceivedBeacon {
                payload: beacon,
                local_rx_us: t + config.t_p_us,
            },
        );
    }
    let pre_rejections = victim.stats.mutesla_rejections + victim.stats.guard_rejections;
    let replay_t = 9.0 * bp;
    let mut vctx = NodeCtx {
        id: 1,
        local_us: replay_t,
        rng: &mut victim_rng,
        anchors: &mut anchors,
        config: &config,
    };
    victim.on_beacon(
        &mut vctx,
        ReceivedBeacon {
            payload: recorded.expect("recorded beacon"),
            local_rx_us: replay_t,
        },
    );
    let post_rejections = victim.stats.mutesla_rejections + victim.stats.guard_rejections;
    println!(
        "victim accepted 8 live beacons ({} retargets), rejected the replayed \
         beacon ({} → {} rejections)\n",
        victim.stats.retargets, pre_rejections, post_rejections
    );
    assert!(post_rejections > pre_rejections);
}

/// Protocol-level demo: forged beacons without credentials go nowhere.
fn forgery_drill() {
    println!("== Protocol-level drill: external forgery rejection ==\n");
    let config = ProtocolConfig::paper();
    let mut anchors = AnchorRegistry::new();
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let mut forger = attacks::ExternalForger::new(Some(0), 0.0, 0.0, f64::MAX);
    let mut victim = SstspNode::founding();

    // The forger impersonates station 0, whose anchor is published.
    anchors.publish(0, [0xAB; 16]);
    let mut fctx = NodeCtx {
        id: 66,
        local_us: 100_000.0,
        rng: &mut rng,
        anchors: &mut anchors,
        config: &config,
    };
    let forged = forger.make_beacon(&mut fctx);
    let mut vctx = NodeCtx {
        id: 1,
        local_us: 100_000.0,
        rng: &mut rng,
        anchors: &mut anchors,
        config: &config,
    };
    victim.on_beacon(
        &mut vctx,
        ReceivedBeacon {
            payload: forged,
            local_rx_us: 100_000.0,
        },
    );
    println!(
        "forged beacon impersonating station 0: µTESLA rejections = {}, \
         victim reference = {:?}\n",
        victim.stats.mutesla_rejections,
        victim.reference()
    );
    assert_eq!(victim.stats.mutesla_rejections, 1);
    assert_eq!(victim.reference(), None);
}

fn main() {
    engine_level_drill();
    replay_drill();
    forgery_drill();
    println!("All drills behaved as the security analysis (Sec. 4) predicts.");
}
