#!/usr/bin/env bash
# Full pre-merge gate: build, test, lint, format.
#
# Run from anywhere; operates on the repository containing this script.
# NOTE: the root package has no lib target — every cargo invocation must
# pass --workspace or most crates silently don't build.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> default-members covers the workspace (plain 'cargo test' is not a no-op)"
# Vendored offline deps (vendor/*) are auto-members of the workspace but
# deliberately not default members; every first-party crate must be one.
meta=$(cargo metadata --no-deps --format-version 1)
members=$(printf '%s' "$meta" | grep -o '"workspace_members":\[[^]]*\]' |
    grep -o 'path+file[^"]*' | grep -cv '/vendor/')
defaults=$(printf '%s' "$meta" | grep -o '"workspace_default_members":\[[^]]*\]' |
    grep -o 'path+file[^"]*' | grep -cv '/vendor/')
if [ "$members" -eq 0 ] || [ "$members" != "$defaults" ]; then
    echo "ERROR: workspace has $members first-party members but only $defaults default members —" >&2
    echo "a plain 'cargo test' would silently skip crates (fix default-members in Cargo.toml)" >&2
    exit 1
fi

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q -p sstsp-faults --features mutation-hooks (planted-bug mutation check)"
cargo test -q -p sstsp-faults --features mutation-hooks

echo "==> fault-matrix smoke (one run per fault class, invariant-checked)"
cargo run --release -q -p sstsp-faults --bin scenario_fuzz -- matrix

echo "==> scenario fuzz (fixed seed, bounded iterations)"
cargo run --release -q -p sstsp-faults --bin scenario_fuzz -- fuzz --iters 10 --seed 2006

echo "==> mesh scenario fuzz at RAYON_NUM_THREADS=1,2,8 (topology dimension, pool-size independent)"
for threads in 1 2 8; do
    echo "    RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo run --release -q -p sstsp-faults --bin scenario_fuzz -- \
        fuzz --iters 8 --seed 2006 --mesh
done

echo "==> thread-determinism at RAYON_NUM_THREADS=1,2,8 (sweep bytes independent of pool size)"
for threads in 1 2 8; do
    echo "    RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q --release -p sstsp --test thread_determinism
done

echo "==> fast-path equivalence at RAYON_NUM_THREADS=1,2,8 (SSTSP_NO_FASTPATH runs bit-identical)"
for threads in 1 2 8; do
    echo "    RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q --release -p sstsp-faults --test fastpath_equivalence
done

echo "==> large-n smoke (n=1000 run inside wall-clock budget, fast vs legacy path identical)"
cargo run --release -q -p sstsp-bench --bin perf_baseline -- --smoke-large

echo "==> work-stealing deque stress smoke (concurrent steal, exactly-once claims)"
cargo test -q --release -p rayon deque_stress

echo "==> telemetry-overhead smoke (disabled-path throughput vs BENCH_engine.json)"
cargo run --release -q -p sstsp-bench --bin perf_baseline -- --smoke

echo "==> no raw println!/eprintln! in library crates (use sstsp-telemetry log/trace)"
# Library sources must emit through the telemetry layer so output is
# structured, capturable, and silent by default. Binaries (src/bin) and
# tests are exempt; the telemetry sink itself writes via writeln!.
if grep -rn --include='*.rs' -E '\b(println|eprintln)!' crates/*/src --exclude-dir=bin |
    grep -vE ':[0-9]+:\s*//'; then
    echo "ERROR: raw print in a library crate — route it through sstsp_telemetry::log" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
