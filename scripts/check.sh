#!/usr/bin/env bash
# Full pre-merge gate: build, test, lint, format.
#
# Run from anywhere; operates on the repository containing this script.
# NOTE: the root package has no lib target — every cargo invocation must
# pass --workspace or most crates silently don't build.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
