#!/usr/bin/env bash
# Full pre-merge gate: build, test, lint, format.
#
# Run from anywhere; operates on the repository containing this script.
# NOTE: the root package has no lib target — every cargo invocation must
# pass --workspace or most crates silently don't build.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> default-members covers the workspace (plain 'cargo test' is not a no-op)"
# Vendored offline deps (vendor/*) are auto-members of the workspace but
# deliberately not default members; every first-party crate must be one.
meta=$(cargo metadata --no-deps --format-version 1)
members=$(printf '%s' "$meta" | grep -o '"workspace_members":\[[^]]*\]' |
    grep -o 'path+file[^"]*' | grep -cv '/vendor/')
defaults=$(printf '%s' "$meta" | grep -o '"workspace_default_members":\[[^]]*\]' |
    grep -o 'path+file[^"]*' | grep -cv '/vendor/')
if [ "$members" -eq 0 ] || [ "$members" != "$defaults" ]; then
    echo "ERROR: workspace has $members first-party members but only $defaults default members —" >&2
    echo "a plain 'cargo test' would silently skip crates (fix default-members in Cargo.toml)" >&2
    exit 1
fi

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q -p sstsp-faults --features mutation-hooks (planted-bug mutation check)"
cargo test -q -p sstsp-faults --features mutation-hooks

echo "==> fault-matrix smoke (one run per fault class, invariant-checked)"
cargo run --release -q -p sstsp-faults --bin scenario_fuzz -- matrix

echo "==> scenario fuzz (fixed seed, bounded iterations)"
cargo run --release -q -p sstsp-faults --bin scenario_fuzz -- fuzz --iters 10 --seed 2006

echo "==> mesh scenario fuzz at RAYON_NUM_THREADS=1,2,8 (topology dimension, pool-size independent)"
for threads in 1 2 8; do
    echo "    RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo run --release -q -p sstsp-faults --bin scenario_fuzz -- \
        fuzz --iters 8 --seed 2006 --mesh
done

echo "==> campaign scenario fuzz (coordinated-adversary dimension, bounded)"
cargo run --release -q -p sstsp-faults --bin scenario_fuzz -- \
    fuzz --iters 8 --seed 2006 --campaign

echo "==> differential security suite at RAYON_NUM_THREADS=1,2,8 (SSTSP vs TSF per campaign)"
for threads in 1 2 8; do
    echo "    RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q --release -p sstsp-repro \
        --test differential_security --test security_drills
done

echo "==> thread-determinism at RAYON_NUM_THREADS=1,2,8 (sweep bytes independent of pool size)"
for threads in 1 2 8; do
    echo "    RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q --release -p sstsp --test thread_determinism
done

echo "==> fast-path equivalence at RAYON_NUM_THREADS=1,2,8 (SSTSP_NO_FASTPATH runs bit-identical)"
for threads in 1 2 8; do
    echo "    RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q --release -p sstsp-faults --test fastpath_equivalence
done

echo "==> record/replay round trip (golden 2-domain bridged scenario, byte-identical)"
SIM=target/release/sstsp-sim
REPLAY_TMP=$(mktemp -d)
trap 'rm -rf "$REPLAY_TMP"' EXIT
cargo build --release -q --bin sstsp-sim
$SIM trace "n=13 dur=12 seed=7 m=4 delta=300 plan=0 mesh=bridged:2:3:2" \
    --out "$REPLAY_TMP/rec.jsonl" 2>"$REPLAY_TMP/rec.err"
for threads in 1 2 8; do
    echo "    RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads $SIM replay "$REPLAY_TMP/rec.jsonl" --strict \
        --out "$REPLAY_TMP/rep.jsonl" 2>"$REPLAY_TMP/rep.err" >/dev/null
    cmp "$REPLAY_TMP/rec.jsonl" "$REPLAY_TMP/rep.jsonl" || {
        echo "ERROR: replay is not byte-identical to the recording" >&2
        exit 1
    }
    diff <(sed -n '/--- telemetry ---/,$p' "$REPLAY_TMP/rec.err") \
        <(sed -n '/--- telemetry ---/,$p' "$REPLAY_TMP/rep.err") || {
        echo "ERROR: replay telemetry diverged from the recording" >&2
        exit 1
    }
done

echo "==> campaign record/replay round trip (reference-slot jammer on the bridged mesh)"
$SIM trace "n=13 dur=12 seed=7 m=4 delta=300 plan=0 mesh=bridged:2:3:2 campaign=jamref:1:4:9" \
    --out "$REPLAY_TMP/camp.jsonl" 2>/dev/null
grep -q '"ev":"campaign"' "$REPLAY_TMP/camp.jsonl" || {
    echo "ERROR: campaign trace carries no campaign events" >&2
    exit 1
}
for threads in 1 2 8; do
    echo "    RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads $SIM replay "$REPLAY_TMP/camp.jsonl" --strict \
        --out "$REPLAY_TMP/camp_rep.jsonl" >/dev/null 2>&1
    cmp "$REPLAY_TMP/camp.jsonl" "$REPLAY_TMP/camp_rep.jsonl" || {
        echo "ERROR: campaign replay is not byte-identical to the recording" >&2
        exit 1
    }
done

echo "==> replay divergence detection (mutated trace must fail --strict, locating BP + kind)"
sed 's/"domain_ref_change","bp":11,"domain":1,"from":null,"to":6/"domain_ref_change","bp":11,"domain":1,"from":null,"to":7/' \
    "$REPLAY_TMP/rec.jsonl" >"$REPLAY_TMP/mut.jsonl"
cmp -s "$REPLAY_TMP/rec.jsonl" "$REPLAY_TMP/mut.jsonl" && {
    echo "ERROR: mutation sed matched nothing — golden election transcript moved?" >&2
    exit 1
}
if $SIM replay "$REPLAY_TMP/mut.jsonl" --strict >"$REPLAY_TMP/mut.out" 2>/dev/null; then
    echo "ERROR: mutated trace passed --strict replay" >&2
    exit 1
fi
grep -q 'BP 11 \[domain_ref_change\]' "$REPLAY_TMP/mut.out" || {
    echo "ERROR: divergence not located (expected 'BP 11 [domain_ref_change]'):" >&2
    cat "$REPLAY_TMP/mut.out" >&2
    exit 1
}

echo "==> trace schema-version mismatch is refused (exit 2)"
sed '1s/"schema":1/"schema":99/' "$REPLAY_TMP/rec.jsonl" >"$REPLAY_TMP/schema.jsonl"
set +e
$SIM replay "$REPLAY_TMP/schema.jsonl" >/dev/null 2>&1
rc=$?
set -e
if [ "$rc" -ne 2 ]; then
    echo "ERROR: schema-mismatched trace exited $rc, want 2" >&2
    exit 1
fi

echo "==> CLI argument validation rejects malformed windows (exit non-zero)"
# The --mesh cases pin value validation: degenerate specs (zero islands,
# empty island grid, zero-area disk) used to parse and then panic the
# topology generators; they must be parse errors naming the bad token.
for bad in "--jam 50,20" "--jam 20,20" "--attack 600,400,30" "--churn 0,0.5,10" \
    "--churn 10,1.5,10" "--duration -5" "--bogus-flag" \
    "--mesh bridged:0:3:2" "--mesh bridged:1:3:2" "--mesh bridged:2:0:2" \
    "--mesh bridged:2:3:0" "--mesh bridged:2:3" "--mesh rgg:0:1" \
    "--mesh rgg:100:0" "--mesh rgg:inf:1" "--mesh hex" \
    "--campaign coalition:1:30:2:20:40" "--campaign sybil:0:30:20:40" \
    "--campaign jamref:2:40:20" "--campaign coalition:2:nan:2:20:40" \
    "--campaign coalition:7:30:2:20:40" "--campaign warp:2:20:40"; do
    set +e
    # shellcheck disable=SC2086
    $SIM $bad --nodes 8 >/dev/null 2>&1
    rc=$?
    set -e
    if [ "$rc" -eq 0 ]; then
        echo "ERROR: 'sstsp-sim $bad' was accepted (exit 0)" >&2
        exit 1
    fi
done

echo "==> large-n smoke (n=1000 run inside wall-clock budget, fast vs legacy path identical)"
cargo run --release -q -p sstsp-bench --bin perf_baseline -- --smoke-large

echo "==> work-stealing deque stress smoke (concurrent steal, exactly-once claims)"
cargo test -q --release -p rayon deque_stress

echo "==> telemetry-overhead smoke (disabled-path throughput vs BENCH_engine.json)"
# One retry: on a loaded 1-core host the overhead estimate occasionally
# strays past the budget even with the robust estimators (true overhead
# ~7% vs a 10% budget leaves little noise margin). The regression class
# this gate exists to catch costs tens of percent and fails both attempts.
cargo run --release -q -p sstsp-bench --bin perf_baseline -- --smoke ||
    cargo run --release -q -p sstsp-bench --bin perf_baseline -- --smoke

echo "==> no raw println!/eprintln! in library crates (use sstsp-telemetry log/trace)"
# Library sources must emit through the telemetry layer so output is
# structured, capturable, and silent by default. Binaries (src/bin) and
# tests are exempt; the telemetry sink itself writes via writeln!.
if grep -rn --include='*.rs' -E '\b(println|eprintln)!' crates/*/src --exclude-dir=bin |
    grep -vE ':[0-9]+:\s*//'; then
    echo "ERROR: raw print in a library crate — route it through sstsp_telemetry::log" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
