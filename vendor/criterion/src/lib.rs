//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`],
//! [`BenchmarkId`], and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark warms up, then times `sample_size` batches and prints
//! min/mean/max per iteration plus derived throughput. There is no
//! statistical regression analysis or HTML report — numbers go to stdout
//! and callers that need machine-readable output (e.g. `perf_baseline`)
//! time their own loops. See `vendor/README.md` for why this crate is
//! vendored.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark throughput annotation: per-iteration work volume.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many abstract elements.
    Elements(u64),
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Config,
    /// Mean/min/max nanoseconds per iteration, filled by [`Bencher::iter`].
    result: Option<Stats>,
}

#[derive(Clone, Copy)]
struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Bencher<'_> {
    /// Time `routine`, warm-up first, then `sample_size` measured samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }
        // Size each sample so the measurement fits the configured window.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let samples = self.cfg.sample_size.max(2);
        let target = self.cfg.measurement_time.as_secs_f64() / samples as f64;
        let batch = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut min_ns = f64::INFINITY;
        let mut max_ns: f64 = 0.0;
        let mut total_ns: f64 = 0.0;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            total_ns += ns;
        }
        self.result = Some(Stats {
            mean_ns: total_ns / samples as f64,
            min_ns,
            max_ns,
        });
    }
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn run_one(
    cfg: &Config,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { cfg, result: None };
    f(&mut b);
    match b.result {
        Some(s) => {
            let mut line = format!(
                "{id:<44} time: [{} {} {}]",
                human_time(s.min_ns),
                human_time(s.mean_ns),
                human_time(s.max_ns)
            );
            if let Some(tp) = throughput {
                let (count, unit) = match tp {
                    Throughput::Bytes(n) => (n, "B"),
                    Throughput::Elements(n) => (n, "elem"),
                };
                let rate = count as f64 / (s.mean_ns / 1e9);
                line.push_str(&format!("  thrpt: [{}]", human_rate(rate, unit)));
            }
            println!("{line}");
        }
        None => println!("{id:<44} (no measurement: closure never called iter)"),
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Set the per-benchmark measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Set the per-benchmark warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&self.cfg, id, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            cfg: &self.cfg,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    cfg: &'a Config,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with per-iteration work volume.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(
            self.cfg,
            &format!("{}/{id}", self.name),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Run a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            self.cfg,
            &format!("{}/{id}", self.name),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Close the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("smoke/add", |b| {
            b.iter(|| std::hint::black_box(2u64) + std::hint::black_box(3u64))
        });
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
