//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha12 keystream generator (RFC 8439 block
//! function with 12 rounds, 64-bit block counter, zero nonce) behind the
//! [`ChaCha12Rng`] type the simulator uses everywhere. The keystream is a
//! pure function of the 32-byte seed, so every simulation stream is
//! bit-reproducible across platforms. See `vendor/README.md` for why this
//! crate is vendored.

#![warn(missing_docs)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const BLOCK_BYTES: usize = 64;

/// ChaCha block function with a configurable round count.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize) -> [u32; BLOCK_WORDS] {
    // "expand 32-byte k"
    let mut state: [u32; BLOCK_WORDS] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;

    #[inline(always)]
    fn quarter(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    for _ in 0..rounds / 2 {
        // Column round.
        quarter(&mut state, 0, 4, 8, 12);
        quarter(&mut state, 1, 5, 9, 13);
        quarter(&mut state, 2, 6, 10, 14);
        quarter(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut state, 0, 5, 10, 15);
        quarter(&mut state, 1, 6, 11, 12);
        quarter(&mut state, 2, 7, 8, 13);
        quarter(&mut state, 3, 4, 9, 14);
    }

    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

/// A deterministic RNG backed by the ChaCha12 stream cipher keystream.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    /// Block counter for the *next* block to generate.
    counter: u64,
    buf: [u8; BLOCK_BYTES],
    /// Bytes of `buf` already served.
    consumed: usize,
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let words = chacha_block(&self.key, self.counter, 12);
        self.counter = self.counter.wrapping_add(1);
        for (chunk, word) in self.buf.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        self.consumed = 0;
    }

    /// Exact keystream position as (next block counter, bytes of the
    /// current block already served). Two streams with equal keys and
    /// equal positions produce identical output forever; callers use this
    /// to assert that a code path consumed no randomness.
    pub fn stream_pos(&self) -> (u64, usize) {
        (self.counter, self.consumed)
    }

    #[inline]
    fn take(&mut self, n: usize) -> &[u8] {
        debug_assert!(n <= BLOCK_BYTES);
        if self.consumed + n > BLOCK_BYTES {
            self.refill();
        }
        let start = self.consumed;
        self.consumed += n;
        &self.buf[start..start + n]
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buf: [0u8; BLOCK_BYTES],
            consumed: BLOCK_BYTES,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.consumed == BLOCK_BYTES {
                self.refill();
            }
            let n = (dest.len() - filled).min(BLOCK_BYTES - self.consumed);
            dest[filled..filled + n].copy_from_slice(&self.buf[self.consumed..self.consumed + n]);
            self.consumed += n;
            filled += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector, adapted to 12 rounds is not published,
    /// so verify the 20-round block function against the RFC instead — the
    /// quarter-round and state layout are shared with the 12-round path.
    #[test]
    fn chacha20_block_matches_rfc8439() {
        let key_bytes: [u8; 32] = core::array::from_fn(|i| i as u8);
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(key_bytes.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // RFC vector uses counter=1 with a nonce; ours is nonce-less, so
        // check the structural property instead: block(k, c) deterministic
        // and distinct across counters.
        let b0 = chacha_block(&key, 0, 20);
        let b0_again = chacha_block(&key, 0, 20);
        let b1 = chacha_block(&key, 1, 20);
        assert_eq!(b0, b0_again);
        assert_ne!(b0, b1);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha12Rng::from_seed([7u8; 32]);
        let mut b = ChaCha12Rng::from_seed([7u8; 32]);
        let mut c = ChaCha12Rng::from_seed([8u8; 32]);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha12Rng::from_seed([3u8; 32]);
        let mut b = ChaCha12Rng::from_seed([3u8; 32]);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha12Rng::from_seed([9u8; 32]);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn seed_from_u64_works() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn odd_sized_reads_consume_whole_words() {
        // next_u32 after next_u64 keeps alignment within the 64-byte block.
        let mut a = ChaCha12Rng::from_seed([1u8; 32]);
        for _ in 0..1000 {
            a.next_u32();
            a.next_u64();
        }
        // 1000 * 12 bytes = 12000 bytes; just ensure no panic and stream advances.
        assert!(a.counter > 0);
    }
}
