//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Implements exactly what the simulator uses: [`Rng::random`],
//! [`Rng::random_range`] over integer and float ranges, [`Rng::random_bool`]
//! and [`Rng::fill`], on top of the [`RngCore`] word source. Sampling
//! algorithms are fixed and platform-independent (widening-multiply range
//! reduction for integers, 53-bit mantissa scaling for floats), so runs are
//! bit-reproducible for a given generator stream. See `vendor/README.md`
//! for why this exists.

#![warn(missing_docs)]

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Types producible uniformly at random by [`Rng::random`].
pub trait Random {
    /// Draw a uniformly distributed value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for usize {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for u8 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform draw in `[0, 1)` with 53 random mantissa bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, bound)` via Lemire's widening-multiply
/// rejection method (`bound > 0`).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Types samplable uniformly from a range by [`Rng::random_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: a raw draw is already uniform.
                    return <$t>::random_from(rng) as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// `Random` impls for the signed widths `sample_inclusive` may fall back to.
impl Random for i8 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}
impl Random for i16 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}
impl Random for i32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Random for i64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Random for isize {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}
impl Random for u16 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        let v = lo + (hi - lo) * unit_f64(rng);
        // Guard against rounding up to `hi` at the top of the range.
        if v < hi {
            v
        } else {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range in random_range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Fill `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly distributed value of an inferred type.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }

    /// Fill `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — good enough to test the samplers.
    struct Sm(u64);
    impl RngCore for Sm {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Sm(1);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.random_range(0..=30);
            assert!(w <= 30);
            let s: usize = rng.random_range(2..5);
            assert!((2..5).contains(&s));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Sm(2);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let w: f64 = rng.random_range(-5.0..=5.0);
            assert!((-5.0..=5.0).contains(&w));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = Sm(3);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 8.0;
            assert!((c as f64 - expected).abs() < expected * 0.1, "{counts:?}");
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = Sm(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn fill_covers_arrays_and_slices() {
        let mut rng = Sm(5);
        let mut a = [0u8; 16];
        rng.fill(&mut a);
        assert_ne!(a, [0u8; 16]);
        let mut v = [0u8; 33];
        rng.fill(&mut v[..]);
        assert!(v.iter().any(|&b| b != 0));
    }
}
