//! Offline stand-in for the `proptest` crate.
//!
//! Covers the surface the workspace's property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, `any::<T>()`, range strategies,
//! tuples, [`Just`], `prop_oneof!`, `collection::vec`, `array::uniform16`,
//! and the `prop_assert*` macros. Unlike real proptest there is no
//! shrinking and no persisted regression seeds: each test runs a fixed
//! number of cases from a seed derived deterministically from the test
//! name, so failures reproduce identically on every run and platform.
//! See `vendor/README.md` for why this crate is vendored.

#![warn(missing_docs)]

pub mod strategy;

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default case count.
        Self { cases: 256 }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{SampleRng, Strategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SampleRng) -> Self::Value {
            let n = rng.below((self.len.end - self.len.start) as u64) as usize + self.len.start;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies over fixed-size arrays.
pub mod array {
    use crate::strategy::{SampleRng, Strategy};

    /// Strategy producing `[T; 16]` with each element drawn from `element`.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16 { element }
    }

    /// See [`uniform16`].
    pub struct Uniform16<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];

        fn sample(&self, rng: &mut SampleRng) -> Self::Value {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            );
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            panic!(
                "prop_assert_ne failed: {} == {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            );
        }
    }};
}

/// Uniform choice between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn` runs `cases` times with fresh samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::strategy::SampleRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}
