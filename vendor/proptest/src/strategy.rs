//! Core [`Strategy`] trait and the built-in strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic sample source for strategies (SplitMix64 stream).
pub struct SampleRng {
    state: u64,
}

impl SampleRng {
    /// RNG seeded from a test's fully qualified name, so every run of a
    /// given test replays the exact same case sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit word.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply reduction; bias is irrelevant for test sampling.
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;

    /// Transform produced values through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Type-erase for storage in heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut SampleRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut SampleRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut SampleRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice across boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut SampleRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Strategy always yielding a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SampleRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut SampleRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait ArbitraryValue: Sized {
    /// Draw a uniformly distributed value of this type.
    fn sample_any(rng: &mut SampleRng) -> Self;
}

impl ArbitraryValue for u8 {
    fn sample_any(rng: &mut SampleRng) -> Self {
        rng.next() as u8
    }
}

impl ArbitraryValue for u16 {
    fn sample_any(rng: &mut SampleRng) -> Self {
        rng.next() as u16
    }
}

impl ArbitraryValue for u32 {
    fn sample_any(rng: &mut SampleRng) -> Self {
        rng.next() as u32
    }
}

impl ArbitraryValue for u64 {
    fn sample_any(rng: &mut SampleRng) -> Self {
        rng.next()
    }
}

impl ArbitraryValue for usize {
    fn sample_any(rng: &mut SampleRng) -> Self {
        rng.next() as usize
    }
}

impl ArbitraryValue for bool {
    fn sample_any(rng: &mut SampleRng) -> Self {
        rng.next() & 1 == 1
    }
}

/// Full-range strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SampleRng) -> T {
        T::sample_any(rng)
    }
}

/// The canonical strategy for `T`'s full value range.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SampleRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SampleRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SampleRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut SampleRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut SampleRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn sample(&self, rng: &mut SampleRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SampleRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let a = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&a));
            let b = (1usize..=5).sample(&mut rng);
            assert!((1..=5).contains(&b));
            let c = (-10.0f64..10.0).sample(&mut rng);
            assert!((-10.0..10.0).contains(&c));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = SampleRng::for_test("x");
        let mut b = SampleRng::for_test("x");
        let mut c = SampleRng::for_test("y");
        let xs: Vec<u64> = (0..10).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn map_union_and_just_compose() {
        let mut rng = SampleRng::for_test("compose");
        let s = crate::prop_oneof![(0u32..10).prop_map(|v| v * 2), Just(99u32),];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v == 99 || (v < 20 && v % 2 == 0), "{v}");
        }
    }
}
