//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable, sliceable, immutable byte view),
//! [`BytesMut`] (append-only builder), and the [`Buf`]/[`BufMut`] traits —
//! exactly the surface the MAC frame codec uses. `Bytes` shares one
//! reference-counted allocation across clones and slices, mirroring the
//! real crate's zero-copy behavior. See `vendor/README.md` for why this
//! crate is vendored.

#![warn(missing_docs)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable, sliceable view into shared bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

/// Read cursor over a byte source, little-endian accessors included.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and advance past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read a little-endian `u32` and advance past it.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64` and advance past it.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Append-only writer of bytes, little-endian accessors included.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize);

    /// Append a `u32` in little-endian order.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.data.resize(self.data.len() + cnt, val);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_fields() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_u32_le(0xAABB_CCDD);
        buf.put_bytes(0xEE, 2);
        assert_eq!(buf.len(), 14);
        let mut wire = buf.freeze();
        assert_eq!(wire.len(), 14);
        assert_eq!(wire.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(wire.get_u32_le(), 0xAABB_CCDD);
        assert_eq!(&wire[..], &[0xEE, 0xEE]);
    }

    #[test]
    fn slice_shares_and_offsets() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = b.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        let tail = mid.slice(1..);
        assert_eq!(&tail[..], &[3, 4, 5]);
        let head = mid.slice(..2);
        assert_eq!(&head[..], &[2, 3]);
        // Original untouched.
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn advance_moves_view() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        b.advance(2);
        assert_eq!(&b[..], &[7, 6]);
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..9);
    }
}
