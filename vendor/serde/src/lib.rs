//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and result
//! types so they stay serialization-ready, but nothing in-tree performs a
//! real serde round-trip (JSON artifacts are written with hand-rolled
//! formatting). This stand-in therefore provides the two trait names as
//! markers and wires the no-op derive macros from `serde_derive` behind the
//! same `derive` feature flag the real crate uses. See `vendor/README.md`.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
