//! Offline stand-in for the `rand_core` crate.
//!
//! This workspace builds in containers with no crates.io access, so the
//! external RNG crates are replaced by minimal local implementations that
//! cover exactly the API surface the simulator uses (see `vendor/README.md`).
//! The traits here mirror `rand_core` 0.9: an [`RngCore`] source of
//! uniformly distributed words plus [`SeedableRng`] construction.
//!
//! Determinism contract: every generator in the workspace is seeded
//! explicitly and produces a platform-independent stream; nothing here ever
//! touches OS entropy.

#![warn(missing_docs)]

/// A source of uniformly distributed random words.
pub trait RngCore {
    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32;

    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64 — a fixed,
    /// platform-independent expansion so tests seeded this way are
    /// reproducible everywhere.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }
    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = Counter::seed_from_u64(7).0;
        let b = Counter::seed_from_u64(7).0;
        assert_eq!(a, b);
        assert_ne!(a, Counter::seed_from_u64(8).0);
    }
}
