//! Offline stand-in for `serde_derive`: the derive macros expand to nothing.
//!
//! The in-tree types derive `Serialize`/`Deserialize` for forward
//! compatibility, but no code path performs serde serialization, so empty
//! expansions are sufficient (and keep the derive attribute compiling).
//! See `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
