//! The work-stealing thread pool executing `par_iter` batches.
//!
//! ## Shape
//!
//! A pool with `threads` participants spawns `threads - 1` worker threads;
//! the thread submitting a batch is always the final participant, so one
//! thread of compute is never wasted on coordination. A batch is a set of
//! `n` task ids (`0..n`, chunk indices for `collect`), distributed
//! round-robin across one [`StealDeque`] per participant. Each participant
//! pops its own deque LIFO and, when empty, sweeps the others' tops
//! (steal, FIFO); termination is decided by a shared remaining-task
//! counter, so a lost steal race can never strand a task or a worker.
//!
//! ## Determinism
//!
//! The pool intentionally has no influence on *results*: task ids map to
//! input indices, every task writes only its own output slot(s), and the
//! collector reassembles outputs by index (see `iter.rs`). Thread count
//! and steal interleaving decide only *which thread* computes an index,
//! never *what* is computed — every run function is required (by the
//! `Sync` bounds on the iterator traits) to be a pure function of the
//! item. The `thread_determinism` suite in `crates/core` pins this
//! end-to-end against the simulation workloads.
//!
//! ## Configuration
//!
//! The global pool sizes itself from `RAYON_NUM_THREADS` (falling back to
//! [`std::thread::available_parallelism`]) on first use, exactly like
//! upstream rayon. [`ThreadPool::new`] + [`ThreadPool::install`] scope a
//! differently-sized pool over a closure — the perf baseline uses this to
//! measure sweep scaling at 1/2/4/8 threads in one process.

use crate::deque::StealDeque;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

thread_local! {
    /// Set inside pool worker threads: a nested `par_iter` on a worker
    /// runs inline instead of deadlocking on the (serialized) batch lock.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Pool selected by [`ThreadPool::install`] on this thread, if any.
    static CURRENT: RefCell<Option<Arc<PoolInner>>> = const { RefCell::new(None) };
}

/// Lock surviving poisoning: a panicking batch must not wedge the pool for
/// every later caller in the process.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One in-flight batch: the type-erased chunk runner plus everything the
/// participants need to claim and retire its tasks.
struct Batch {
    /// Runs one task id. The `'static` is a lie told by `run_batch`
    /// (see its safety comment): the reference is only ever invoked for a
    /// claimed task, and `run_batch` does not return until every task has
    /// been claimed *and finished*, so the referent outlives every call.
    run: &'static (dyn Fn(usize) + Sync),
    /// Tasks not yet finished. Participants retire tasks here *after*
    /// running them; `0` therefore means "all work done", not merely
    /// "all work claimed".
    remaining: AtomicUsize,
    /// One deque per participant, caller last.
    deques: Vec<StealDeque>,
    /// First panic raised by a task, rethrown by the submitting thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    /// Claim a task: own deque first (LIFO), then sweep the others' tops.
    fn find(&self, me: usize) -> Option<usize> {
        if let Some(v) = self.deques[me].pop() {
            return Some(v);
        }
        let n = self.deques.len();
        for k in 1..n {
            if let Some(v) = self.deques[(me + k) % n].steal() {
                return Some(v);
            }
        }
        None
    }

    /// Claim-and-run until the batch is complete. Returns only when
    /// `remaining` has reached zero, i.e. every task has *finished*.
    fn work(&self, me: usize) {
        loop {
            match self.find(me) {
                Some(task) => {
                    if let Err(p) = catch_unwind(AssertUnwindSafe(|| (self.run)(task))) {
                        let mut slot = lock(&self.panic);
                        if slot.is_none() {
                            *slot = Some(p);
                        }
                    }
                    if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        return;
                    }
                }
                None => {
                    if self.remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    // Tail of the batch: the last tasks are executing on
                    // other participants. Tasks are coarse (whole
                    // simulation runs), so a yield loop beats the
                    // complexity of a second condvar handshake.
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Worker-visible pool state: a monotonically increasing batch epoch and
/// the batch itself, plus the shutdown flag for owned pools.
struct PoolState {
    epoch: u64,
    shutdown: bool,
    batch: Option<Arc<Batch>>,
}

/// Shared pool core; workers and submitters hold it via `Arc`.
pub(crate) struct PoolInner {
    /// Participants including the submitting thread.
    threads: usize,
    state: Mutex<PoolState>,
    /// Workers sleep here between batches.
    work_cv: Condvar,
    /// Serializes batches: one `collect` owns the pool at a time (threads
    /// *within* a batch share freely).
    batch_lock: Mutex<()>,
}

impl PoolInner {
    /// Execute `run(0..n_tasks)` across the pool, returning when every
    /// task has finished. Panics from tasks are rethrown here (first one
    /// wins; the rest of the batch still runs — tasks are independent).
    pub(crate) fn run_batch(&self, n_tasks: usize, run: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        // Single-threaded pools and nested calls from inside a worker run
        // inline: same order a 1-thread batch would use, no coordination.
        if self.threads == 1 || IN_WORKER.with(Cell::get) {
            for i in 0..n_tasks {
                run(i);
            }
            return;
        }

        let _serial = lock(&self.batch_lock);
        let parts = self.threads;
        // SAFETY (of the lifetime transmute): `run` escapes into worker
        // threads only through `Batch::run`, which is invoked exclusively
        // for tasks claimed from the batch's deques. `remaining` counts
        // *finished* tasks and both `Batch::work` below and the drain loop
        // in workers return only once it hits zero, so every invocation of
        // `run` completes before this frame — and the closure it borrows —
        // is gone. Late-waking workers see empty deques, claim nothing,
        // and never touch `run`.
        let run: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(run) };
        let batch = Arc::new(Batch {
            run,
            remaining: AtomicUsize::new(n_tasks),
            deques: (0..parts)
                .map(|_| StealDeque::with_capacity(n_tasks.div_ceil(parts)))
                .collect(),
            panic: Mutex::new(None),
        });
        for i in 0..n_tasks {
            batch.deques[i % parts]
                .push(i)
                .expect("deques sized for the batch");
        }
        {
            let mut st = lock(&self.state);
            st.epoch += 1;
            st.batch = Some(Arc::clone(&batch));
            self.work_cv.notify_all();
        }
        // The submitter is the last participant. While it works the batch
        // it counts as a pool worker: a nested `par_iter` inside one of
        // its own tasks must run inline rather than re-enter `run_batch`
        // and self-deadlock on the (non-reentrant) batch lock.
        {
            struct InWorker(bool);
            impl Drop for InWorker {
                fn drop(&mut self) {
                    let prev = self.0;
                    IN_WORKER.with(|w| w.set(prev));
                }
            }
            let _guard = InWorker(IN_WORKER.with(|w| w.replace(true)));
            batch.work(parts - 1);
        }
        debug_assert_eq!(batch.remaining.load(Ordering::Acquire), 0);
        lock(&self.state).batch = None;
        let panicked = lock(&batch.panic).take();
        if let Some(p) = panicked {
            resume_unwind(p);
        }
    }
}

/// Worker main loop: sleep until a new batch epoch appears, work it to
/// completion, repeat. A worker that misses a short batch entirely (epoch
/// advanced but the batch already retired) just resynchronizes its epoch.
fn worker_main(inner: Arc<PoolInner>, me: usize) {
    IN_WORKER.with(|w| w.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let batch = {
            let mut st = lock(&inner.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.batch.clone();
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        if let Some(b) = batch {
            b.work(me);
        }
    }
}

/// An owned work-stealing pool. [`ThreadPool::install`] scopes it over a
/// closure; dropping it shuts the workers down. The process-global pool
/// (used when no install is active) is created lazily on first use and
/// sized by `RAYON_NUM_THREADS`.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Build a pool with exactly `threads` participants (clamped to ≥ 1).
    /// `threads - 1` worker threads are spawned; the submitting thread is
    /// the last participant of every batch.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(PoolInner {
            threads,
            state: Mutex::new(PoolState {
                epoch: 0,
                shutdown: false,
                batch: None,
            }),
            work_cv: Condvar::new(),
            batch_lock: Mutex::new(()),
        });
        let workers = (0..threads - 1)
            .map(|me| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rayon-worker-{me}"))
                    .spawn(move || worker_main(inner, me))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { inner, workers }
    }

    /// Number of participants (including the submitting thread).
    pub fn current_num_threads(&self) -> usize {
        self.inner.threads
    }

    /// Run `f` with this pool handling every `par_iter` executed on the
    /// current thread (restores the previous selection on exit, panic
    /// included).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<PoolInner>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT.with(|c| *c.borrow_mut() = self.0.take());
            }
        }
        let _restore = Restore(CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.inner))));
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.inner.state);
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Global pool size: `RAYON_NUM_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
fn default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// The pool a `par_iter` on this thread would use: the installed pool if
/// inside [`ThreadPool::install`], the global pool otherwise.
fn current() -> Arc<PoolInner> {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| Arc::clone(&global().inner))
}

/// Participants in the pool a `par_iter` on this thread would use
/// (1 inside a pool worker: nested iteration runs inline).
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        1
    } else {
        current().threads
    }
}

/// Execute `run(0..n_tasks)` on the current thread's pool; returns when
/// every task has finished.
pub(crate) fn run_indexed(n_tasks: usize, run: &(dyn Fn(usize) + Sync)) {
    if IN_WORKER.with(Cell::get) {
        for i in 0..n_tasks {
            run(i);
        }
        return;
    }
    current().run_batch(n_tasks, run);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_runs_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            run_indexed(1000, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.install(|| {
            run_indexed(16, &|i| {
                order.lock().unwrap().push(i);
            })
        });
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn pools_are_reusable_across_batches() {
        let pool = ThreadPool::new(3);
        for round in 0..20 {
            let sum = AtomicUsize::new(0);
            pool.install(|| {
                run_indexed(round + 1, &|i| {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                })
            });
            let n = round + 1;
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        }
    }

    #[test]
    fn task_panic_propagates_to_submitter() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                run_indexed(8, &|i| {
                    if i == 5 {
                        panic!("task 5 exploded");
                    }
                })
            })
        }));
        assert!(r.is_err(), "panic must cross the pool");
        // The pool survives for the next batch.
        let count = AtomicUsize::new(0);
        pool.install(|| {
            run_indexed(8, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn install_is_scoped_and_restored() {
        let a = ThreadPool::new(2);
        let b = ThreadPool::new(5);
        assert_eq!(a.current_num_threads(), 2);
        a.install(|| {
            assert_eq!(current().threads, 2);
            b.install(|| assert_eq!(current().threads, 5));
            assert_eq!(current().threads, 2);
        });
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = ThreadPool::new(4);
        let sum = AtomicUsize::new(0);
        pool.install(|| {
            run_indexed(100, &|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            })
        });
        drop(pool); // must not hang or leak panics
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }
}
