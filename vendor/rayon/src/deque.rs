//! A Chase–Lev work-stealing deque over `usize` task ids.
//!
//! One deque per pool participant: the owner pushes and pops at the
//! *bottom* (LIFO, cache-warm), thieves steal from the *top* (FIFO, the
//! oldest — and for chunked `par_iter` batches the largest remaining —
//! work). The implementation follows Chase & Lev, "Dynamic Circular
//! Work-Stealing Deque" (SPAA '05), with the memory-ordering discipline of
//! Lê et al. (PPoPP '13), under two simplifications that keep it easy to
//! audit:
//!
//! * **Fixed capacity.** The buffer never grows; [`StealDeque::push`]
//!   reports a full deque instead. The pool sizes each deque for the batch
//!   it distributes, so the growth path (the hard part of Chase–Lev:
//!   buffer replacement needs epoch/hazard reclamation) never exists.
//! * **Atomic slots.** Elements are bare `usize` task ids stored in
//!   `AtomicUsize` cells, so even a theoretically stale read is a defined
//!   value — a thief that loses the `top` CAS discards whatever it read.
//!   There is no `unsafe` in this module.
//!
//! `top` only ever increases (claims) and `bottom` only moves at the owner
//! end, so a successful `compare_exchange` on `top` claims index `top`
//! exactly once: no element is lost or handed out twice. The
//! `deque_stress_*` tests hammer exactly that property from concurrent
//! thieves; `scripts/check.sh` runs them as the concurrency smoke.

use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};

/// Fixed-capacity work-stealing deque of `usize` task ids.
///
/// Thread contract: [`push`](StealDeque::push) and
/// [`pop`](StealDeque::pop) must only be called by the deque's owner (one
/// thread at a time); [`steal`](StealDeque::steal) may be called from any
/// thread concurrently with everything else. Violating the owner contract
/// cannot corrupt memory (all state is atomic) but can double-deliver a
/// task id.
pub struct StealDeque {
    /// Steal end. Monotonically increasing; a successful CAS here claims
    /// the element at the old value.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it.
    bottom: AtomicIsize,
    /// Power-of-two circular buffer of task ids.
    slots: Box<[AtomicUsize]>,
    /// `slots.len() - 1`, for cheap index wrapping.
    mask: usize,
}

impl StealDeque {
    /// Create a deque able to hold at least `cap` elements at once.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        StealDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Number of elements the deque can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Owner-only: push `v` at the bottom. Returns `Err(v)` if the deque
    /// is full (the pool sizes deques so this does not happen in batch
    /// distribution; the stress tests exercise it).
    pub fn push(&self, v: usize) -> Result<(), usize> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.slots.len() as isize {
            return Err(v);
        }
        self.slots[(b as usize) & self.mask].store(v, Ordering::Relaxed);
        // Release: a thief that Acquire-loads the new bottom sees the slot.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pop from the bottom (most recently pushed).
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom write before reading top: a concurrent thief
        // must either see the reservation or we must see its claim.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty; undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let v = self.slots[(b as usize) & self.mask].load(Ordering::Relaxed);
        if t == b {
            // Last element: race the thieves for it via top.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(v);
        }
        Some(v)
    }

    /// Any thread: steal from the top (least recently pushed). Returns
    /// `None` when the deque looks empty *or* when another thief (or the
    /// owner taking the last element) won the race — callers treat both as
    /// "look elsewhere"; batch termination is decided by the pool's
    /// remaining-task counter, never by a single failed steal.
    pub fn steal(&self) -> Option<usize> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let v = self.slots[(t as usize) & self.mask].load(Ordering::Relaxed);
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
            .then_some(v)
    }

    /// Best-effort element count (exact when quiescent).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque looks empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = StealDeque::with_capacity(8);
        for v in [10, 11, 12] {
            d.push(v).unwrap();
        }
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), Some(10), "thief takes the oldest");
        assert_eq!(d.pop(), Some(12), "owner takes the newest");
        assert_eq!(d.pop(), Some(11));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn push_reports_full() {
        let d = StealDeque::with_capacity(2);
        assert_eq!(d.capacity(), 2);
        d.push(1).unwrap();
        d.push(2).unwrap();
        assert_eq!(d.push(3), Err(3));
        assert_eq!(d.steal(), Some(1));
        d.push(3).unwrap();
        assert_eq!(d.pop(), Some(3));
    }

    #[test]
    fn wraps_around_the_ring() {
        let d = StealDeque::with_capacity(4);
        for round in 0..10 {
            for v in 0..3 {
                d.push(round * 3 + v).unwrap();
            }
            assert_eq!(d.steal(), Some(round * 3));
            assert_eq!(d.pop(), Some(round * 3 + 2));
            assert_eq!(d.pop(), Some(round * 3 + 1));
            assert!(d.pop().is_none());
        }
    }

    /// Stress scale: heavier under `--release` (check.sh), lighter for the
    /// plain debug test suite.
    const STRESS_ITEMS: usize = if cfg!(debug_assertions) {
        20_000
    } else {
        200_000
    };

    /// The work-stealing safety property: with one owner interleaving
    /// pushes and pops and several concurrent thieves, every pushed id is
    /// claimed exactly once.
    #[test]
    fn deque_stress_concurrent_steal_claims_each_item_exactly_once() {
        const THIEVES: usize = 4;
        let d = StealDeque::with_capacity(1024);
        let claims: Vec<AtomicUsize> = (0..STRESS_ITEMS).map(|_| AtomicUsize::new(0)).collect();
        let claimed_total = AtomicUsize::new(0);
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                s.spawn(|| {
                    while !done.load(Ordering::Acquire) {
                        match d.steal() {
                            Some(v) => {
                                claims[v].fetch_add(1, Ordering::Relaxed);
                                claimed_total.fetch_add(1, Ordering::Relaxed);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                });
            }
            // Owner: push in bursts, pop a little (claiming too), so both
            // ends stay hot while thieves hammer the top.
            let mut next = 0usize;
            while next < STRESS_ITEMS {
                let burst = (STRESS_ITEMS - next).min(64);
                for _ in 0..burst {
                    if d.push(next).is_err() {
                        break; // full: let thieves drain
                    }
                    next += 1;
                }
                for _ in 0..8 {
                    if let Some(v) = d.pop() {
                        claims[v].fetch_add(1, Ordering::Relaxed);
                        claimed_total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Drain the rest ourselves; thieves may still claim some.
            while let Some(v) = d.pop() {
                claims[v].fetch_add(1, Ordering::Relaxed);
                claimed_total.fetch_add(1, Ordering::Relaxed);
            }
            while claimed_total.load(Ordering::Acquire) < STRESS_ITEMS {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });

        assert_eq!(claimed_total.load(Ordering::Relaxed), STRESS_ITEMS);
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i} claimed wrongly");
        }
    }

    /// Thieves only (no owner pops after the fill): the batch-distribution
    /// shape the pool actually uses.
    #[test]
    fn deque_stress_pure_steal_drain() {
        const THIEVES: usize = 8;
        let items = STRESS_ITEMS / 2;
        let d = StealDeque::with_capacity(items);
        for v in 0..items {
            d.push(v).unwrap();
        }
        let claims: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                s.spawn(|| loop {
                    match d.steal() {
                        Some(v) => {
                            claims[v].fetch_add(1, Ordering::Relaxed);
                        }
                        None if d.is_empty() => break,
                        None => std::thread::yield_now(),
                    }
                });
            }
        });
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i} claimed wrongly");
        }
    }
}
