//! Offline stand-in for the `rayon` crate.
//!
//! Exposes the tiny slice of the rayon API the sweep layer uses —
//! `par_iter()` on slices and `Vec`, followed by `map` and `collect` —
//! executing sequentially in deterministic input order. Because real rayon
//! also preserves input order through `collect`, sweep results are
//! bit-identical whether this stand-in or the real crate is in play, and
//! `RAYON_NUM_THREADS` trivially has no effect on output. See
//! `vendor/README.md` for why this crate is vendored.

#![warn(missing_docs)]

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    /// Conversion into a (sequential) "parallel" iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type yielded by the iterator.
        type Item: 'a;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Iterate over `&self` in input order.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// Ordered iterator mirroring `rayon::iter::ParallelIterator`.
    pub trait ParallelIterator: Sized {
        /// Item type.
        type Item;

        /// Drive the iterator, yielding items in input order.
        fn drive(self, consume: &mut dyn FnMut(Self::Item));

        /// Map each item through `f`, preserving order.
        fn map<F, R>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> R,
        {
            Map { base: self, f }
        }

        /// Collect all items in input order.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_iter(self)
        }
    }

    /// Ordered collection from a parallel iterator.
    pub trait FromParallelIterator<T> {
        /// Build the collection, consuming the iterator.
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
            let mut out = Vec::new();
            iter.drive(&mut |item| out.push(item));
            out
        }
    }

    /// Iterator over `&[T]` in input order.
    pub struct SliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync + 'a> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;

        fn drive(self, consume: &mut dyn FnMut(Self::Item)) {
            for item in self.slice {
                consume(item);
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            SliceIter { slice: self }
        }
    }

    /// Mapped iterator (see [`ParallelIterator::map`]).
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, F, R> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        F: Fn(I::Item) -> R,
    {
        type Item = R;

        fn drive(self, consume: &mut dyn FnMut(Self::Item)) {
            let f = self.f;
            self.base.drive(&mut |item| consume(f(item)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let xs = vec![1u32, 2, 3, 4, 5];
        let ys: Vec<u32> = xs.par_iter().map(|&x| x * 10).collect();
        assert_eq!(ys, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn par_iter_on_slice() {
        let xs = [3u64, 1, 4];
        let ys: Vec<u64> = xs[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![4, 2, 5]);
    }
}
