//! Offline stand-in for the `rayon` crate — now with real parallelism.
//!
//! Exposes the slice of the rayon API the sweep layer uses — `par_iter()`
//! on slices and `Vec`, followed by `map` and `collect` — executed on an
//! in-workspace work-stealing thread pool ([`pool`]): per-worker
//! Chase–Lev deques with stealing ([`deque`]), chunked splitting of the
//! input, and an index-stamped, order-preserving `collect`.
//!
//! Like upstream rayon, results are **bit-identical regardless of thread
//! count or steal interleaving**: items are pure functions of their input
//! (enforced by the `Sync`/`Send` bounds), chunks are reassembled by input
//! index, and nothing about scheduling reaches the output. Thread count
//! comes from `RAYON_NUM_THREADS` (default: available parallelism); a
//! scoped [`ThreadPool`] can override it per closure. See
//! `vendor/README.md` for why this crate is vendored.

#![warn(missing_docs)]

pub mod deque;
pub mod pool;

pub use pool::{current_num_threads, ThreadPool};

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    use crate::pool;
    use std::sync::Mutex;

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type yielded by the iterator.
        type Item: 'a;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Iterate over `&self`; `collect` preserves input order.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// Indexed parallel iterator mirroring `rayon::iter::ParallelIterator`
    /// for the exact-length sources this stand-in supports.
    ///
    /// `Sync` because the iterator itself is shared across the pool's
    /// workers, each producing disjoint indices via
    /// [`item_at`](ParallelIterator::item_at); `Send` items because chunk
    /// outputs travel back to the collecting thread.
    pub trait ParallelIterator: Sized + Sync {
        /// Item type.
        type Item: Send;

        /// Exact number of items.
        fn len(&self) -> usize;

        /// Whether the iterator has no items.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Produce the item at `index`. Called concurrently from pool
        /// workers, each index exactly once per drive.
        fn item_at(&self, index: usize) -> Self::Item;

        /// Map each item through `f`, preserving order.
        fn map<F, R>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> R + Sync,
            R: Send,
        {
            Map { base: self, f }
        }

        /// Collect all items in input order, computing them in parallel on
        /// the current thread's pool.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_iter(self)
        }
    }

    /// Ordered collection from a parallel iterator.
    pub trait FromParallelIterator<T: Send> {
        /// Build the collection, consuming the iterator.
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        /// Index-stamped, order-preserving parallel collect: the input is
        /// split into contiguous chunks, each chunk is computed as one
        /// pool task into its own buffer stamped with its start index, and
        /// the buffers are reassembled in index order. The result is
        /// byte-for-byte the sequential output whatever the thread count
        /// or steal interleaving.
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
            let n = iter.len();
            if n == 0 {
                return Vec::new();
            }
            // ~4 chunks per participant: enough slack for stealing to
            // balance uneven task costs, coarse enough that per-chunk
            // bookkeeping is noise.
            let chunk = n.div_ceil(pool::current_num_threads() * 4).max(1);
            let n_chunks = n.div_ceil(chunk);
            let pieces: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(n_chunks));
            pool::run_indexed(n_chunks, &|c: usize| {
                let start = c * chunk;
                let end = (start + chunk).min(n);
                let mut buf = Vec::with_capacity(end - start);
                for i in start..end {
                    buf.push(iter.item_at(i));
                }
                pieces
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((start, buf));
            });
            let mut pieces = pieces.into_inner().unwrap_or_else(|e| e.into_inner());
            pieces.sort_unstable_by_key(|&(start, _)| start);
            debug_assert_eq!(pieces.len(), n_chunks);
            let mut out = Vec::with_capacity(n);
            for (_, mut buf) in pieces {
                out.append(&mut buf);
            }
            out
        }
    }

    /// Iterator over `&[T]`.
    pub struct SliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync + 'a> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;

        fn len(&self) -> usize {
            self.slice.len()
        }

        fn item_at(&self, index: usize) -> &'a T {
            &self.slice[index]
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            SliceIter { slice: self }
        }
    }

    /// Mapped iterator (see [`ParallelIterator::map`]).
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, F, R> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        F: Fn(I::Item) -> R + Sync,
        R: Send,
    {
        type Item = R;

        fn len(&self) -> usize {
            self.base.len()
        }

        fn item_at(&self, index: usize) -> R {
            (self.f)(self.base.item_at(index))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPool;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let xs = vec![1u32, 2, 3, 4, 5];
        let ys: Vec<u32> = xs.par_iter().map(|&x| x * 10).collect();
        assert_eq!(ys, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn par_iter_on_slice() {
        let xs = [3u64, 1, 4];
        let ys: Vec<u64> = xs[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![4, 2, 5]);
    }

    #[test]
    fn empty_input_collects_empty() {
        let xs: Vec<u32> = Vec::new();
        let ys: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn order_preserved_across_pool_sizes() {
        // Uneven task costs force stealing; the collected order must stay
        // the input order for every pool size.
        let xs: Vec<usize> = (0..257).collect();
        let expensive = |&x: &usize| {
            let mut acc = x as u64;
            for _ in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        };
        let seq: Vec<(usize, u64)> =
            ThreadPool::new(1).install(|| xs.par_iter().map(expensive).collect());
        for threads in [2, 4, 8] {
            let par: Vec<(usize, u64)> =
                ThreadPool::new(threads).install(|| xs.par_iter().map(expensive).collect());
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn input_smaller_than_pool_still_completes() {
        let xs = [7u32];
        let ys: Vec<u32> =
            ThreadPool::new(8).install(|| xs[..].par_iter().map(|&x| x + 1).collect());
        assert_eq!(ys, vec![8]);
    }

    #[test]
    fn nested_par_iter_runs_inline() {
        let pool = ThreadPool::new(4);
        let xs: Vec<u32> = (0..64).collect();
        let ys: Vec<u32> = pool.install(|| {
            xs.par_iter()
                .map(|&x| {
                    // A nested collect inside a pool task must not deadlock.
                    let inner: Vec<u32> = [x, x + 1][..].par_iter().map(|&v| v * 2).collect();
                    inner.iter().sum()
                })
                .collect()
        });
        let expect: Vec<u32> = xs.iter().map(|&x| 2 * x + 2 * (x + 1)).collect();
        assert_eq!(ys, expect);
    }
}
